package cpu

import "shadowtlb/internal/obs"

// Observe attaches an observability session to the processor. The CPU
// registers the run's cycle breakdown and instruction counters, keeps
// the sampler so Charge — the single point every simulated cycle flows
// through — can drive cycle-interval snapshots, and keeps the timeline
// so each software TLB miss becomes a span. With no session the fields
// stay nil and the hot path pays one nil check per charge.
func (c *CPU) Observe(o *obs.Obs) {
	r := o.Registry()
	r.CounterFunc("cycles.user", func() uint64 { return uint64(c.Breakdown.User) })
	r.CounterFunc("cycles.tlbmiss", func() uint64 { return uint64(c.Breakdown.TLBMiss) })
	r.CounterFunc("cycles.memory", func() uint64 { return uint64(c.Breakdown.Memory) })
	r.CounterFunc("cycles.kernel", func() uint64 { return uint64(c.Breakdown.Kernel) })
	r.GaugeFunc("cycles.tlbmiss_fraction", func() float64 { return c.Breakdown.TLBFraction() })
	r.CounterFunc("cpu.instructions", func() uint64 { return c.Instructions })
	r.CounterFunc("cpu.loads", func() uint64 { return c.Loads })
	r.CounterFunc("cpu.stores", func() uint64 { return c.Stores })
	c.smp = o.Sampler()
	c.tl = o.Timeline()
	c.missHist = r.Histogram("cpu.tlbmiss_handler_cycles")
}
