// Batched replay path: StreamCols consumes a column-form reference run
// (workload.RefCols, the compiled replay engine's storage layout)
// without materializing workload.Ref values and without the functional
// DRAM traffic of Load/Store — replayed loads discard their values and
// replayed stores write a placeholder, and no counter anywhere in the
// machine depends on DRAM contents, so eliding the data movement is
// exact. On top of that the loop batches the bookkeeping of runs that
// provably take the fast path:
//
//   - refs that repeat the memoized page and line accumulate their
//     instruction cycles, TLB/cache hit counts and load/store counts in
//     locals, flushed to the shared counters before anything that could
//     observe them;
//   - page changes consult a replay-scale page memo (replaySlots pages,
//     against fastpath.go's eight) and then the TLB itself, so only a
//     real TLB or cache miss pays the full access path;
//   - the flush points are exactly the places per-reference execution
//     would interleave other work: an instruction-fetch boundary (every
//     IFetchPeriod instructions), a reference that needs the full access
//     path, or the end of the run.
//
// Equivalence with per-reference execution rests on the same facts the
// fast path proves (fastpath.go) plus four more, each load-bearing:
//
//   - Kernel.Advance is associative: ticks fire on cumulative cycle
//     counts, so Charge(a+b) ≡ Charge(a);Charge(b) when no OnTick hook
//     runs between them;
//   - TLB NRU touches are idempotent between TLB mutations: touch
//     returns immediately once the referenced bit is set, and any
//     mutation that could clear it (an insert, purge, or another
//     entry's touch aging the set) only happens inside an escape, which
//     ends the deferred run;
//   - TLB.Lookup on a hit is counter-equivalent to TLB.FastHit (one
//     Stats.Hit plus the touch; lastHit is not a counter), so which
//     memo — the fast-path memo, the replay memo, or none — holds a
//     page never changes the counter stream;
//   - Cache.FastHit/FastRepeatHit mutate nothing but hit counters, and
//     Cache.Access on the hits FastHit accepts does exactly the same
//     (replacement is round-robin, not recency-based, and write
//     upgrades are refused into the full path).
//
// Configurations that break the batching assumptions — a preemption
// quantum, a kernel tick hook, an attached sampler or timeline, a
// per-access invariant probe, or NoFastPath — fall back to exact
// per-reference delivery.
package cpu

import (
	"shadowtlb/internal/arch"
	"shadowtlb/internal/cache"
	"shadowtlb/internal/check"
	"shadowtlb/internal/stats"
	"shadowtlb/internal/tlb"
	"shadowtlb/internal/workload"
)

var _ workload.ColStreamer = (*CPU)(nil)

// replaySlots sizes the replay page memo: direct-mapped by virtual page
// number, large enough to hold the paper workloads' hot page working
// sets. Purely a simulator acceleration, like the fast-path memo: every
// use is guarded by the same generation checks.
const replaySlots = 512

// replayLineWords is the size of a per-page line bitmap: one bit per
// cache line of a base page.
const replayLineWords = arch.PageSize / arch.LineSize / 64

// replaySlot caches one page's verified translation chain for the
// batched replay loop.
type replaySlot struct {
	valid  bool
	lineW  bool       // remembered line was modified (silent-write ok)
	vbase  uint64     // 4 KB-aligned virtual base
	entry  *tlb.Entry // installed TLB entry covering vbase
	paBase arch.PAddr // physical (possibly shadow) base of the page
	lineB  uint64     // last verified resident line, 0 when none
	tlbGen uint64     // TLB.Gen() when cached
	shGen  uint64     // shadow generation when cached
	eGen   uint64     // CPU.rEpoch when the line bitmaps were started
	// lines marks page lines verified resident; written marks those
	// verified modified (stores need no upgrade). A set bit makes
	// Cache.FastHit on that line a foregone conclusion — one counted
	// hit, no state change — so the loop defers the count instead.
	// Freshness: drainEvictions clears the exact victim bits after
	// every escape, so bitmaps at the current epoch are always exact;
	// an eGen behind CPU.rEpoch means an eviction-log overflow lost
	// track and the bitmaps must restart empty.
	lines   [replayLineWords]uint64
	written [replayLineWords]uint64
}

// drainEvictions applies every cache eviction logged since the last
// drain to the replay memo: each victim line's bit is cleared in the
// slot holding its page, so slot bitmaps stay exact without any
// per-adoption synchronization. When the log overflowed (more than
// cache.EvictLogSize evictions since the last drain, or a flush), the
// epoch advances and every slot's bitmaps die wholesale. Called
// wherever evictions can have happened: after escapes and instruction
// fetches, and at batch entry.
func (c *CPU) drainEvictions() {
	g := c.Cache.EvictGen()
	if g == c.rDrained {
		return
	}
	var buf [cache.EvictLogSize]uint64
	if ne, ok := c.Cache.EvictionsSince(c.rDrained, buf[:]); ok {
		for _, ev := range buf[:ne] {
			rs := &c.rmemo[(ev>>arch.PageShift)&(replaySlots-1)]
			if rs.valid && rs.vbase == ev&^uint64(arch.PageMask) && rs.eGen == c.rEpoch {
				li := (ev & arch.PageMask) >> arch.LineShift
				rs.lines[li>>6] &^= 1 << (li & 63)
				rs.written[li>>6] &^= 1 << (li & 63)
				if ev == rs.lineB {
					rs.lineB, rs.lineW = 0, false
				}
			}
		}
	} else {
		c.rEpoch++
	}
	c.rDrained = g
}

// StreamCols issues a column-form reference run with semantics identical
// to delivering the materialized refs through Stream.
func (c *CPU) StreamCols(cols workload.RefCols) {
	if c.replayBatchable() {
		c.streamColsFast(cols)
		return
	}
	// Exact fallback: per-reference issue, full functional accesses.
	for i := 0; i < cols.Len(); i++ {
		r := cols.Ref(i)
		if r.Store {
			c.Store(r.VA, int(r.Size), r.Val)
		} else {
			c.Load(r.VA, int(r.Size))
		}
		if r.Step > 0 {
			c.Step(int(r.Step))
		}
	}
}

// replayBatchable reports whether batched counter accumulation is
// observationally equivalent to per-reference execution on this CPU:
// nothing may run between references that could see intermediate counter
// state or perturb the structures the batch hoists.
func (c *CPU) replayBatchable() bool {
	return !c.cfg.NoFastPath &&
		c.Quantum == 0 &&
		c.smp == nil && c.tl == nil &&
		c.K.OnTick == nil &&
		!(check.Enabled && c.OnAccessCheck != nil)
}

// replayOne runs one reference through the regular access path, minus
// the functional data movement.
func (c *CPU) replayOne(va arch.VAddr, size int, isStore bool) {
	kind := arch.Read
	if isStore {
		kind = arch.Write
		c.Stores++
	} else {
		c.Loads++
	}
	c.access(va, size, kind)
}

// streamColsFast is the batched loop. See the package comment for the
// equivalence argument.
func (c *CPU) streamColsFast(cols workload.RefCols) {
	if c.rmemo == nil {
		c.rmemo = make([]replaySlot, replaySlots)
	}
	period := c.cfg.IFetchPeriod
	lineMask := c.Cache.LineMask()
	si := c.sinceIFetch

	// Counters accrued since the last flush.
	var pend uint64 // instructions (one user cycle each)
	var tlbHits, cacheHits uint64
	var loads, stores uint64

	// Generations, reloaded after anything that could advance them.
	c.drainEvictions()
	tlbGen, shGen, cGen := c.TLB.Gen(), c.shadowGen(), c.Cache.Gen()
	epoch := c.rEpoch

	// Hoisted state of the page the run is currently inside. noPage
	// forces re-adoption (with live generation checks) after anything
	// that could invalidate it.
	const noPage = ^uint64(0)
	curVBase := noPage
	var rs *replaySlot // replay-memo slot of the current page
	var entry *tlb.Entry
	var paBase arch.PAddr
	var lineB uint64
	var lineW bool
	// needTouch: the page's TLB entry must be re-touched (a full
	// FastHit, not a deferred count) because NRU state may have changed
	// since the last touch — at every adoption and after any ifetch or
	// full-path escape, any of which can age reference bits.
	needTouch := true

	flush := func() {
		if pend > 0 {
			c.Instructions += pend
			c.Charge(stats.Cycles(pend), User)
			pend = 0
		}
		c.TLB.Stats.Hits += tlbHits
		c.Cache.Stats.Hits += cacheHits
		c.Loads += loads
		c.Stores += stores
		tlbHits, cacheHits, loads, stores = 0, 0, 0, 0
	}
	// resync re-hoists state after an escape ran arbitrary machine code.
	resync := func() {
		si = c.sinceIFetch
		c.drainEvictions()
		tlbGen, shGen, cGen = c.TLB.Gen(), c.shadowGen(), c.Cache.Gen()
		epoch = c.rEpoch
		curVBase = noPage
		needTouch = true
	}
	// escape runs one reference through the full per-reference path
	// (which interleaves its own charging, ifetching and memoization)
	// after bringing every shared counter up to date.
	escape := func(va arch.VAddr, size int, isStore bool, step uint32) {
		flush()
		c.sinceIFetch = si
		c.replayOne(va, size, isStore)
		if step > 0 {
			c.Step(int(step))
		}
		resync()
	}

	n := len(cols.VPN)
	runs := cols.Runs
	ri := 0
	for i := 0; i < n; i++ {
		// Retire whole compiled runs as counter arithmetic when the page
		// memo proves every access in them hits. For each page the run
		// spans: the replay slot holds the page at the current TLB and
		// shadow generations, the page's TLB entry already has its NRU
		// bit set (so every touch the run would do provably early-
		// returns before any state change), and the run's line bitmaps
		// are a subset of the slot's verified-resident (and, for stores,
		// verified-modified) bitmaps. With the run's cycles fitting
		// before the next instruction fetch, each retired reference is
		// then exactly a deferred TLB hit plus a deferred cache hit —
		// what the per-reference path below would have produced one
		// iteration at a time — and no TLB, cache, or NRU state changes.
		if ri < len(runs) && int(runs[ri].Start)-cols.Bit0 == i {
			r := &runs[ri]
			ri++
			if r.Cycles != ^uint32(0) && si+int(r.Cycles) < period {
				ok := true
				for k := 0; k < int(r.NPages); k++ {
					rp := &r.Pages[k]
					vb := uint64(rp.VPN) << arch.PageShift
					s := &c.rmemo[uint64(rp.VPN)&(replaySlots-1)]
					if !s.valid || s.vbase != vb || s.tlbGen != tlbGen ||
						s.shGen != shGen || s.eGen != epoch || !s.entry.Referenced() {
						ok = false
						break
					}
					for w := 0; w < replayLineWords; w++ {
						if rp.Lines[w]&^s.lines[w] != 0 || rp.Written[w]&^s.written[w] != 0 {
							ok = false
							break
						}
					}
					if !ok {
						break
					}
				}
				if ok {
					pend += uint64(r.Cycles)
					si += int(r.Cycles)
					cnt := uint64(r.Count)
					cacheHits += cnt
					tlbHits += cnt
					loads += uint64(r.Loads)
					stores += uint64(r.Stores)
					i += int(r.Count) - 1
					continue
				}
			}
		}

		va := arch.VAddr(uint64(cols.VPN[i])<<arch.PageShift | uint64(cols.Off[i]))
		bit := cols.Bit0 + i
		isStore := cols.Store[bit>>6]&(1<<(bit&63)) != 0
		step := cols.Step[i]

		// An instruction-fetch boundary lands inside this reference:
		// take the full path, which fetches at the exact instruction.
		if si+1 >= period {
			escape(va, int(cols.Size[i]), isStore, step)
			continue
		}

		kind := arch.Read
		if isStore {
			kind = arch.Write
		}

		vbase := uint64(va) &^ arch.PageMask
		if vbase != curVBase {
			// Adopt the new page: replay memo, then fast-path memo,
			// then the TLB itself. Every source is guarded by the same
			// generation checks; whichever holds the page, the
			// reference's counters come out identical.
			rs = &c.rmemo[(vbase>>arch.PageShift)&(replaySlots-1)]
			if rs.valid && rs.vbase == vbase && rs.tlbGen == tlbGen && rs.shGen == shGen {
				entry, paBase = rs.entry, rs.paBase
				if rs.eGen != epoch {
					// The eviction log overflowed since the bitmaps were
					// started: they must restart empty.
					rs.lineB, rs.lineW = 0, false
					rs.lines = [replayLineWords]uint64{}
					rs.written = [replayLineWords]uint64{}
					rs.eGen = epoch
				}
				lineB, lineW = rs.lineB, rs.lineW
			} else if m := &c.memo[(vbase>>arch.PageShift)&(memoSlots-1)]; m.valid &&
				m.vbase == vbase && m.tlbGen == tlbGen && m.shGen == shGen {
				entry, paBase = m.entry, m.paBase
				if m.cacheGen == cGen {
					lineB, lineW = m.lineBase, m.lineWritable
				} else {
					lineB, lineW = 0, false
				}
				rs.valid, rs.vbase, rs.entry, rs.paBase = true, vbase, entry, paBase
				rs.lineB, rs.lineW = lineB, lineW
				rs.tlbGen, rs.shGen, rs.eGen = tlbGen, shGen, epoch
				rs.lines = [replayLineWords]uint64{}
				rs.written = [replayLineWords]uint64{}
				if lineB != 0 {
					li := (lineB & arch.PageMask) >> arch.LineShift
					rs.lines[li>>6] |= 1 << (li & 63)
					if lineW {
						rs.written[li>>6] |= 1 << (li & 63)
					}
				}
			} else {
				// Medium path: the TLB may still hold the page. Lookup
				// is counter-equivalent to the touch the memoized paths
				// do; on a TLB miss the handler runs exactly where
				// per-reference execution would run it.
				e := c.TLB.Lookup(uint64(va))
				if e == nil {
					// Real TLB miss. Commit this reference's
					// instruction (charged before the handler, as
					// instr(1) orders it) and every deferred counter,
					// then run the handler and the full cache path.
					if isStore {
						stores++
					} else {
						loads++
					}
					pend++
					si++
					flush()
					c.sinceIFetch = si
					mpa, me := c.translateMissed(va, kind)
					c.accessSlow(va, kind, mpa, me, true)
					if step > 0 {
						c.Step(int(step))
					}
					resync()
					continue
				}
				pa := arch.PAddr(e.Translate(uint64(va)))
				hit, writable := c.Cache.FastHit(va, pa, kind)
				if !hit {
					// Real cache miss (or a write needing an upgrade):
					// full cache path, translation already counted.
					if isStore {
						stores++
					} else {
						loads++
					}
					pend++
					si++
					flush()
					c.sinceIFetch = si
					c.accessSlow(va, kind, pa, e, true)
					if step > 0 {
						c.Step(int(step))
					}
					resync()
					continue
				}
				// TLB hit + cache hit: adopt. Lookup already touched
				// and counted the TLB hit for this reference, FastHit
				// counted the cache hit; only the instruction and the
				// load/store count remain.
				entry = e
				curVBase = vbase
				paBase = pa &^ arch.PAddr(arch.PageMask)
				lineB, lineW = uint64(va)&^lineMask, writable
				rs.valid, rs.vbase, rs.entry, rs.paBase = true, vbase, entry, paBase
				rs.lineB, rs.lineW = lineB, lineW
				rs.tlbGen, rs.shGen, rs.eGen = tlbGen, shGen, epoch
				rs.lines = [replayLineWords]uint64{}
				rs.written = [replayLineWords]uint64{}
				if lineB != 0 {
					li := (lineB & arch.PageMask) >> arch.LineShift
					rs.lines[li>>6] |= 1 << (li & 63)
					if lineW {
						rs.written[li>>6] |= 1 << (li & 63)
					}
				}
				needTouch = false
				pend++
				si++
				if isStore {
					stores++
				} else {
					loads++
				}
				goto folded
			}
			curVBase = vbase
			needTouch = true
		}

		{
			lb := uint64(va) &^ lineMask
			if lb == lineB && (!isStore || lineW) {
				// Repeat of a verified line in a state this access
				// cannot change: pure counter work.
				cacheHits++
			} else if li := (uint64(va) & arch.PageMask) >> arch.LineShift; rs.lines[li>>6]>>(li&63)&1 != 0 &&
				(!isStore || rs.written[li>>6]>>(li&63)&1 != 0) {
				// Line already verified at this cache generation, in a
				// state this access cannot change: FastHit would count
				// one hit and return — defer the count instead.
				cacheHits++
				lineB, lineW = lb, rs.written[li>>6]>>(li&63)&1 != 0
			} else {
				off := arch.PAddr(uint64(va) & arch.PageMask)
				hit, writable := c.Cache.FastHit(va, paBase|off, kind)
				if !hit {
					// Real cache miss (or a write needing an upgrade).
					// The page's translation is already verified, so
					// count the TLB hit exactly as the per-ref path
					// would and run only the cache's full path.
					if needTouch {
						c.TLB.FastHit(entry)
					} else {
						tlbHits++
					}
					if isStore {
						stores++
					} else {
						loads++
					}
					pend++
					si++
					flush()
					c.sinceIFetch = si
					c.accessSlow(va, kind, paBase|off, entry, true)
					if step > 0 {
						c.Step(int(step))
					}
					resync()
					continue
				}
				// FastHit counted the cache hit itself.
				lineB, lineW = lb, writable
				rs.lineB, rs.lineW = lb, writable
				rs.lines[li>>6] |= 1 << (li & 63)
				if writable {
					rs.written[li>>6] |= 1 << (li & 63)
				}
			}
			pend++
			si++
			if needTouch {
				c.TLB.FastHit(entry)
				needTouch = false
			} else {
				tlbHits++
			}
			if isStore {
				stores++
			} else {
				loads++
			}
		}

	folded:
		if step > 0 {
			pend += uint64(step)
			si += int(step)
			if si >= period {
				// instr(n) charges the whole batch, then fetches.
				flush()
				for si >= period {
					si -= period
					c.ifetch()
				}
				c.drainEvictions()
				tlbGen, shGen, cGen = c.TLB.Gen(), c.shadowGen(), c.Cache.Gen()
				epoch = c.rEpoch
				curVBase = noPage
				needTouch = true
			}
		}
	}
	flush()
	c.sinceIFetch = si
}
