package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeJobSpec feeds arbitrary bytes to the submit endpoint's
// decoder. The contract: never panic, and any accepted document must
// survive a re-encode/re-decode round trip — the decoder is the API
// boundary, so a spec that decodes differently the second time would
// mean accepted jobs aren't reproducible from their own JSON.
func FuzzDecodeJobSpec(f *testing.F) {
	f.Add([]byte(`{"experiments":["fig3"],"scale":"small"}`))
	f.Add([]byte(`{"experiments":["all"]}`))
	f.Add([]byte(`{"cells":[{"workload":"compress","tlb":64,"mtlb":1024,"ways":2}],"scale":"small","timeout_ms":1000}`))
	f.Add([]byte(`{"cells":[{"workload":"compress","tlb":64,"mtlb":128,"scheme":"coalesced"}],"scale":"small"}`))
	f.Add([]byte(`{"cells":[{"workload":"em3d","mtlb":128,"scheme":"no-such-scheme"}]}`))
	f.Add([]byte(`{"cells":[{"workload":"radix","config":{"Label":"x","DRAMBytes":1048576}}]}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"cells":[{"workload":1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"scale":{"nested":"wrong type"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected; only the no-panic contract applies
		}
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		spec2, err := DecodeJobSpec(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded spec rejected: %v\n%s", err, enc)
		}
		enc2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("re-decoded spec does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not stable:\n%s\n%s", enc, enc2)
		}
	})
}

// TestDecodeJobSpecRejectsUnknownFields pins the strictness the fuzz
// target relies on: typos in field names are 400s, not silent no-ops.
func TestDecodeJobSpecRejectsUnknownFields(t *testing.T) {
	_, err := DecodeJobSpec(strings.NewReader(`{"experimets":["fig3"]}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestDecodeJobSpecSchemeRoundTrips pins the scheme field through the
// strict decoder: it decodes, survives a re-encode round trip, and a
// misspelled "schema" key is rejected rather than silently dropped.
func TestDecodeJobSpecSchemeRoundTrips(t *testing.T) {
	spec, err := DecodeJobSpec(strings.NewReader(
		`{"cells":[{"workload":"em3d","mtlb":128,"scheme":"spill"}],"scale":"small"}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Cells) != 1 || spec.Cells[0].Scheme != "spill" {
		t.Fatalf("decoded spec = %+v", spec)
	}
	enc, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := DecodeJobSpec(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("re-encoded spec rejected: %v\n%s", err, enc)
	}
	if spec2.Cells[0].Scheme != "spill" {
		t.Fatalf("scheme lost in round trip: %+v", spec2)
	}
	if _, err := DecodeJobSpec(strings.NewReader(
		`{"cells":[{"workload":"em3d","schema":"spill"}]}`)); err == nil {
		t.Fatal("misspelled scheme key accepted")
	}
}
