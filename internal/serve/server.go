// Package serve is the simulation daemon behind cmd/mtlbd: a long-lived
// service that accepts simulation jobs over HTTP — single cells, whole
// registered experiments, and batch sweeps — schedules them on a
// bounded worker pool layered over internal/exp/runner, and answers
// repeated configurations from a process-lifetime LRU result cache.
//
// The request path is queue → executor → per-job runner.Pool → shared
// semaphore + ResultCache. Admission control is a bounded queue: when
// it is full, POST /v1/jobs returns 429 with Retry-After instead of
// letting work pile up unboundedly. Every job runs under a deadline
// whose cancellation drops its queued cells and releases its worker
// slots; a panicking simulation fails that one job, never the process.
// Drain stops admission, lets every admitted job finish, and leaves the
// status and metrics endpoints serving until the listener closes.
package serve

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shadowtlb/internal/core"
	"shadowtlb/internal/exp"
	"shadowtlb/internal/exp/runner"
	"shadowtlb/internal/obs"
	"shadowtlb/internal/resultstore"
)

// Config sizes the daemon.
type Config struct {
	// Workers bounds simultaneous cell simulations across every job
	// (0 = GOMAXPROCS).
	Workers int
	// JobWorkers bounds simultaneously executing jobs (0 = 4).
	JobWorkers int
	// QueueCap bounds admitted-but-not-started jobs; a full queue
	// rejects with 429 (0 = 64).
	QueueCap int
	// CacheEntries caps the LRU result cache (0 = 4096).
	CacheEntries int
	// DefaultTimeout is the per-job deadline when the spec has none
	// (0 = 5 minutes).
	DefaultTimeout time.Duration
	// RetainJobs caps terminal job records kept for status queries
	// (0 = 1024). Live jobs are never evicted.
	RetainJobs int
	// DefaultScheme is the translation backend applied to shortcut cell
	// specs that leave scheme unset ("" = the paper's MTLB). It must be
	// a registered scheme; New panics otherwise (a deployment error
	// callers like mtlbd surface before binding a listener).
	DefaultScheme string
	// StoreDir, when set, attaches a persistent result store rooted
	// there as a second cache tier: memory misses consult it before
	// simulating, simulated results are written through, and a daemon
	// restart serves repeat configurations from disk. New panics when
	// the directory cannot be opened (a deployment error, like a bad
	// scheme). Empty keeps the daemon memory-only.
	StoreDir string
	// StoreMaxBytes bounds the persistent store's on-disk size
	// (0 = resultstore.DefaultMaxBytes). Ignored without StoreDir.
	StoreMaxBytes int64
	// NodeID names this daemon within a cluster. It is surfaced as the
	// node_id label on the serve.node_info metric, as a span attribute
	// on every job, and in the GET /v1/node document, so multi-node
	// scrapes and traces are distinguishable. Empty is fine for a
	// standalone daemon.
	NodeID string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.JobWorkers <= 0 {
		c.JobWorkers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	return c
}

// Server is the daemon: admission queue, job executors, shared worker
// semaphore and result cache, and the HTTP API over them.
type Server struct {
	cfg   Config
	sem   chan struct{}
	cache *ResultCache
	queue chan *Job

	reg         *obs.Registry
	tracer      *obs.Tracer // nil = tracing off; every span path is free
	mSubmit     *obs.AtomicCounter
	mRejected   *obs.AtomicCounter
	mDone       *obs.AtomicCounter
	mFailed     *obs.AtomicCounter
	mCanceled   *obs.AtomicCounter
	mCellWall   *obs.AtomicHistogram
	mJobWall    *obs.AtomicHistogram
	mAdmitWait  *obs.AtomicHistogram
	mStreamTTFB *obs.AtomicHistogram
	// mCellScheme holds one wall-time histogram per translation backend
	// ("none" included), pre-registered so the Prometheus family is
	// complete from the first scrape.
	mCellScheme map[string]*obs.AtomicHistogram
	inflight    atomic.Int64

	wg       sync.WaitGroup // job executors
	admitMu  sync.RWMutex
	draining bool

	jobsMu sync.Mutex
	jobs   map[string]*Job
	order  []string // creation order, for retention eviction
	nextID uint64

	// extCache, when set, replaces the plain result cache on job pools
	// (see SetCacheWrapper); nil means jobs use s.cache directly.
	extCache runner.ExternalCache

	// testExec, when set by tests in this package, replaces real job
	// execution with a deterministic stand-in.
	testExec func(ctx context.Context, j *Job) (*JobResult, error)
}

// New assembles a server. Call Start to launch its executors.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if !core.HasScheme(cfg.DefaultScheme) {
		panic(fmt.Sprintf("serve: %v", schemeError(cfg.DefaultScheme)))
	}
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, poolWorkers(cfg.Workers)),
		cache: NewResultCache(cfg.CacheEntries),
		queue: make(chan *Job, cfg.QueueCap),
		reg:   obs.NewRegistry(),
		jobs:  make(map[string]*Job),
	}
	if cfg.StoreDir != "" {
		st, err := resultstore.Open(cfg.StoreDir, resultstore.Options{MaxBytes: cfg.StoreMaxBytes})
		if err != nil {
			panic(fmt.Sprintf("serve: %v", err))
		}
		s.cache.SetStore(st)
	}
	s.mSubmit = s.reg.AtomicCounter("serve.jobs_submitted")
	s.mRejected = s.reg.AtomicCounter("serve.jobs_rejected")
	s.mDone = s.reg.AtomicCounter("serve.jobs_done")
	s.mFailed = s.reg.AtomicCounter("serve.jobs_failed")
	s.mCanceled = s.reg.AtomicCounter("serve.jobs_canceled")
	s.reg.CounterFunc("serve.cache_hits", func() uint64 { h, _ := s.cache.Stats(); return h })
	s.reg.CounterFunc("serve.cache_misses", func() uint64 { _, m := s.cache.Stats(); return m })
	s.reg.GaugeFunc("serve.cache_entries", func() float64 { return float64(s.cache.Len()) })
	s.reg.GaugeFunc("serve.queue_depth", func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("serve.jobs_inflight", func() float64 { return float64(s.inflight.Load()) })
	s.reg.GaugeFunc("serve.workers", func() float64 { return float64(cap(s.sem)) })
	if cfg.NodeID != "" {
		// Info-style metric: a constant 1 whose node_id label names this
		// daemon, the Prometheus idiom for identity in multi-node scrapes.
		s.reg.GaugeFuncL("serve.node_info", func() float64 { return 1 },
			obs.Label{Key: "node_id", Value: cfg.NodeID})
		s.reg.SetHelp("serve.node_info", "constant 1; the node_id label names this daemon within a cluster")
	}
	s.mCellWall = s.reg.AtomicHistogram("serve.cell_wall_us")
	s.mJobWall = s.reg.AtomicHistogram("serve.job_wall_us")
	s.mAdmitWait = s.reg.AtomicHistogram("serve.admission_wait_us")
	s.mStreamTTFB = s.reg.AtomicHistogram("serve.stream_ttfb_us")
	s.mCellScheme = make(map[string]*obs.AtomicHistogram)
	for _, scheme := range append(core.SchemeNames(), "none") {
		s.mCellScheme[scheme] = s.reg.AtomicHistogramL("serve.cell_wall_by_scheme_us",
			obs.Label{Key: "scheme", Value: scheme})
	}
	s.reg.CounterFuncL("serve.cache_outcome",
		func() uint64 { st, _, _, _ := s.cache.Counters(); return st },
		obs.Label{Key: "outcome", Value: "hit"})
	s.reg.CounterFuncL("serve.cache_outcome",
		func() uint64 { _, co, _, _ := s.cache.Counters(); return co },
		obs.Label{Key: "outcome", Value: "coalesced"})
	s.reg.CounterFuncL("serve.cache_outcome",
		func() uint64 { _, _, dk, _ := s.cache.Counters(); return dk },
		obs.Label{Key: "outcome", Value: "disk"})
	s.reg.CounterFuncL("serve.cache_outcome",
		func() uint64 { _, _, _, led := s.cache.Counters(); return led },
		obs.Label{Key: "outcome", Value: "miss"})
	s.reg.SetHelp("serve.jobs_submitted", "jobs accepted by admission")
	s.reg.SetHelp("serve.jobs_rejected", "jobs rejected by the full admission queue")
	s.reg.SetHelp("serve.cache_hits", "cell results served without simulating (stored or coalesced)")
	s.reg.SetHelp("serve.cache_misses", "cell results that led a simulation")
	s.reg.SetHelp("serve.cache_outcome", "cache lookups by outcome: stored hit, coalesced onto an in-flight simulation, served from the persistent disk store, or miss")
	s.reg.SetHelp("serve.queue_depth", "jobs admitted but not yet picked up by an executor")
	s.reg.SetHelp("serve.cell_wall_us", "per-cell wall time across all schemes (µs)")
	s.reg.SetHelp("serve.cell_wall_by_scheme_us", "per-cell wall time by translation backend (µs)")
	s.reg.SetHelp("serve.job_wall_us", "per-job wall time, pickup to terminal state (µs)")
	s.reg.SetHelp("serve.admission_wait_us", "queue wait, admission to executor pickup (µs)")
	s.reg.SetHelp("serve.stream_ttfb_us", "event-stream time to first byte (µs)")
	return s
}

// SetTracer attaches a span tracer; every subsequent job gets a span
// tree (submit → admission → run → per-cell, plus stream spans). A nil
// tracer — the default — keeps every instrumented path allocation-free.
// Call before Start.
func (s *Server) SetTracer(t *obs.Tracer) { s.tracer = t }

// Tracer returns the attached tracer, nil when tracing is off.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// poolWorkers mirrors runner.New's GOMAXPROCS default without exporting
// it.
func poolWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runner.New(0).Workers()
}

// Start launches the job executors.
func (s *Server) Start() {
	for i := 0; i < s.cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.executor()
	}
}

// Workers returns the simulation concurrency bound.
func (s *Server) Workers() int { return cap(s.sem) }

// NodeID returns the daemon's cluster node id, "" when standalone.
func (s *Server) NodeID() string { return s.cfg.NodeID }

// Inflight returns the number of jobs currently executing.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// QueueDepth returns the number of admitted-but-not-started jobs.
func (s *Server) QueueDepth() int { return len(s.queue) }

// SetCacheWrapper interposes wrap's return value between job pools and
// the server's result cache — the fault-injection harness wraps the
// cache with panics, stalls and evictions this way. The wrapper is
// built once, so its counters span all jobs. Call before Start.
func (s *Server) SetCacheWrapper(wrap func(runner.ExternalCache) runner.ExternalCache) {
	s.extCache = wrap(s.cache)
}

// Cache exposes the shared result cache (for load reports and tests).
func (s *Server) Cache() *ResultCache { return s.cache }

// Registry exposes the server metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Draining reports whether admission has been closed.
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// Drain closes admission — new submissions get 503 — and waits until
// every admitted job has reached a terminal state or ctx expires.
// In-flight and queued jobs run to completion; this is the SIGTERM
// path, so results already promised to clients are never dropped.
// Drain is idempotent; concurrent calls all wait.
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.admitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// Submit validates and admits a job. It returns the queued job, or
// ErrDraining when admission is closed, or ErrQueueFull when the
// bounded queue is at capacity.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitTraced(spec, obs.SpanContext{})
}

// SubmitTraced is Submit carrying a caller's trace context — the parent
// parsed from a traceparent header, or zero to mint a fresh trace. The
// admitted job's root span adopts the caller's trace, so a client-side
// tracer and the daemon's agree on one tree. With no tracer attached
// this is exactly Submit.
func (s *Server) SubmitTraced(spec JobSpec, parent obs.SpanContext) (*Job, error) {
	if err := s.validate(spec); err != nil {
		return nil, &BadRequestError{Err: err}
	}
	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		return nil, ErrDraining
	}
	j := newJob(s.newID(), spec)
	j.span = s.tracer.StartSpan("job", parent)
	j.span.SetAttr("id", j.id)
	if s.cfg.NodeID != "" {
		j.span.SetAttr("node", s.cfg.NodeID)
	}
	select {
	case s.queue <- j:
		s.admitMu.RUnlock()
		s.mSubmit.Inc()
		s.register(j)
		return j, nil
	default:
		s.admitMu.RUnlock()
		s.mRejected.Inc()
		j.span.SetAttr("rejected", "queue_full")
		j.span.End()
		return nil, ErrQueueFull
	}
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// newID mints a job id.
func (s *Server) newID() string {
	n := atomic.AddUint64(&s.nextID, 1)
	return fmt.Sprintf("job-%06d", n)
}

// register adds the job to the status index, evicting the oldest
// terminal records past the retention cap.
func (s *Server) register(j *Job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.order) > s.cfg.RetainJobs {
		evicted := false
		for i, id := range s.order {
			if old, ok := s.jobs[id]; ok && old.State().Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything retained is still live
		}
	}
}

// validate rejects malformed specs at admission, before any queue slot
// or simulation time is committed.
func (s *Server) validate(spec JobSpec) error {
	hasCells, hasExps := len(spec.Cells) > 0, len(spec.Experiments) > 0
	if hasCells == hasExps {
		return fmt.Errorf("exactly one of cells or experiments must be set")
	}
	scale, err := jobScale(spec)
	if err != nil {
		return err
	}
	for i, cs := range spec.Cells {
		if _, err := cs.cell(scale, s.cfg.DefaultScheme); err != nil {
			return fmt.Errorf("cells[%d]: %w", i, err)
		}
	}
	if _, err := resolveExperiments(spec.Experiments); err != nil {
		return err
	}
	return nil
}

// jobScale parses the spec's scale, defaulting to paper like mtlbexp.
func jobScale(spec JobSpec) (exp.Scale, error) {
	if spec.Scale == "" {
		return exp.Paper, nil
	}
	return exp.ParseScale(spec.Scale)
}

// resolveExperiments expands ids ("all" included) into descriptors.
func resolveExperiments(ids []string) ([]exp.Descriptor, error) {
	var descs []exp.Descriptor
	for _, id := range ids {
		if id == "all" {
			descs = append(descs, exp.Descriptors()...)
			continue
		}
		d, ok := exp.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		descs = append(descs, d)
	}
	return descs, nil
}

// executor drains the job queue until Drain closes it.
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job under its deadline, isolating any panic to
// this job.
func (s *Server) runJob(j *Job) {
	s.inflight.Add(1)
	start := time.Now()
	wait := start.Sub(j.submitted)
	s.mAdmitWait.Observe(uint64(wait.Microseconds()))
	s.tracer.RecordSpan("admission", j.span.Context(), j.submitted, wait)
	defer func() {
		s.mJobWall.Observe(uint64(time.Since(start).Microseconds()))
		s.inflight.Add(-1)
	}()

	if j.canceledEarly() {
		j.finish(nil, context.Canceled)
		s.mCanceled.Inc()
		return
	}
	timeout := s.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	j.setCancel(cancel)
	defer cancel()

	run := s.tracer.StartSpan("run", j.span.Context())
	res, err := s.execute(obs.ContextWithSpan(ctx, run), j)
	run.End()
	j.finish(res, err)
	switch j.State() {
	case StateDone:
		s.mDone.Inc()
	case StateCanceled:
		s.mCanceled.Inc()
	default:
		s.mFailed.Inc()
	}
}

// execute runs the job's cells or experiments on a fresh pool layered
// over the server-wide semaphore and result cache. A panic anywhere in
// the job — a misconfigured bespoke experiment, a bad cell config that
// slipped past validation — becomes this job's error.
func (s *Server) execute(ctx context.Context, j *Job) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if s.testExec != nil {
		return s.testExec(ctx, j)
	}

	scale, err := jobScale(j.spec)
	if err != nil {
		return nil, err
	}
	pool := runner.NewShared(s.sem)
	if s.extCache != nil {
		pool.UseCache(s.extCache)
	} else {
		pool.UseCache(s.cache)
	}
	run := obs.SpanFromContext(ctx)
	pool.SetCellHook(func(ev runner.CellEvent) {
		wallUS := uint64(ev.WallNS) / 1000
		s.mCellWall.Observe(wallUS)
		if h := s.mCellScheme[ev.Scheme]; h != nil {
			h.Observe(wallUS)
		}
		if run != nil {
			cached := "false"
			if ev.Cached {
				cached = "true"
			}
			wall := time.Duration(ev.WallNS)
			run.Tracer().RecordSpan("cell", run.Context(), time.Now().Add(-wall), wall,
				"workload", ev.Workload, "scheme", ev.Scheme, "cached", cached)
		}
		j.cellDone(ev)
	})
	if len(j.spec.Cells) > 0 {
		return s.runCells(ctx, pool, j, scale)
	}
	return s.runExperiments(ctx, pool, j, scale)
}

// runCells executes a batch-sweep job: every distinct cell once, then
// one result per requested spec entry, in request order.
func (s *Server) runCells(ctx context.Context, pool *runner.Pool, j *Job, scale exp.Scale) (*JobResult, error) {
	cells := make([]exp.Cell, len(j.spec.Cells))
	distinct := make(map[string]struct{})
	for i, cs := range j.spec.Cells {
		c, err := cs.cell(scale, s.cfg.DefaultScheme)
		if err != nil {
			return nil, err // unreachable after validate; defensive
		}
		cells[i] = c
		distinct[c.Key()] = struct{}{}
	}
	j.start(len(distinct))
	if err := pool.WarmCtx(ctx, cells); err != nil {
		return nil, err
	}
	out := &JobResult{Cells: make([]CellResult, len(cells))}
	for i, c := range cells {
		r, err := pool.ResultCtx(ctx, c) // memoized after the warm
		if err != nil {
			return nil, err
		}
		out.Cells[i] = CellResult{Key: c.Key(), Label: r.Label, Workload: r.Workload, Result: r}
	}
	return out, nil
}

// runExperiments executes an experiment job and renders its tables in
// both encodings, plus the run manifest.
func (s *Server) runExperiments(ctx context.Context, pool *runner.Pool, j *Job, scale exp.Scale) (*JobResult, error) {
	descs, err := resolveExperiments(j.spec.Experiments)
	if err != nil {
		return nil, err
	}
	distinct := make(map[string]struct{})
	for _, d := range descs {
		if d.Cells != nil {
			for _, c := range d.Cells(scale) {
				distinct[c.Key()] = struct{}{}
			}
		}
	}
	j.start(len(distinct))
	outs, err := pool.RunExperimentsCtx(ctx, descs, scale)
	if err != nil {
		return nil, err
	}
	res := &JobResult{Experiments: make([]ExperimentResult, len(outs))}
	ids := make([]string, len(descs))
	for i, d := range descs {
		ids[i] = d.ID
	}
	for i, out := range outs {
		er := ExperimentResult{ID: out.ID}
		for _, t := range out.Tables {
			er.Tables = append(er.Tables, RenderedTable{Text: t.String(), CSV: t.CSV()})
		}
		res.Experiments[i] = er
	}
	m := pool.Manifest(ids, scale)
	res.Manifest = &m
	return res, nil
}

// ExperimentInfo is one GET /v1/experiments row.
type ExperimentInfo struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Scaled bool   `json:"scaled"`
}

// Experiments lists the registry in registration order.
func Experiments() []ExperimentInfo {
	ds := exp.Descriptors()
	out := make([]ExperimentInfo, len(ds))
	for i, d := range ds {
		out[i] = ExperimentInfo{ID: d.ID, Title: d.Title, Scaled: d.Scaled}
	}
	return out
}

// JobIDs returns the retained job ids, oldest first (for debugging and
// tests).
func (s *Server) JobIDs() []string {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	ids := append([]string(nil), s.order...)
	sort.SliceStable(ids, func(i, k int) bool { return ids[i] < ids[k] })
	return ids
}
