package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"shadowtlb/internal/obs"
)

// spansByName indexes a tracer's records, failing on duplicates so
// assertions stay unambiguous.
func spansByName(t *testing.T, tr *obs.Tracer) map[string][]obs.SpanRecord {
	t.Helper()
	out := make(map[string][]obs.SpanRecord)
	for _, s := range tr.Spans() {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// TestJobTraceTree pins the tentpole acceptance path: a traced
// submission produces one trace covering submit → admission → run →
// per-cell, with the caller's traceparent adopted as the root and
// cache-hit cells marked as such on a repeat job.
func TestJobTraceTree(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 2})
	tr := obs.NewTracer("mtlbd", nil, 0)
	s.SetTracer(tr)

	parent := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	body := strings.NewReader(`{"cells":[{"workload":"stride","tlb":64,"mtlb":128}],"scale":"small"}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent.TraceParent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		ID    string `json:"id"`
		Trace string `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if accepted.Trace != parent.Trace.String() {
		t.Fatalf("accepted trace %q, want caller's %q", accepted.Trace, parent.Trace)
	}
	st := waitTerminal(t, s, ts, accepted.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	if st.Trace != parent.Trace.String() {
		t.Errorf("status trace %q, want %q", st.Trace, parent.Trace)
	}

	spans := spansByName(t, tr)
	job := spans["job"]
	if len(job) != 1 {
		t.Fatalf("got %d job spans, want 1", len(job))
	}
	if job[0].Trace != parent.Trace.String() || job[0].Parent != parent.Span.String() {
		t.Errorf("job span trace=%s parent=%s, want trace=%s parent=%s",
			job[0].Trace, job[0].Parent, parent.Trace, parent.Span)
	}
	if job[0].Attrs["state"] != "done" {
		t.Errorf("job span state attr = %q", job[0].Attrs["state"])
	}
	for _, name := range []string{"admission", "run"} {
		got := spans[name]
		if len(got) != 1 {
			t.Fatalf("got %d %s spans, want 1", len(got), name)
		}
		if got[0].Parent != job[0].Span {
			t.Errorf("%s span parent %s, want job span %s", name, got[0].Parent, job[0].Span)
		}
	}
	cells := spans["cell"]
	if len(cells) != 1 {
		t.Fatalf("got %d cell spans, want 1", len(cells))
	}
	if cells[0].Parent != spans["run"][0].Span {
		t.Errorf("cell span parent %s, want run span %s", cells[0].Parent, spans["run"][0].Span)
	}
	if cells[0].Attrs["scheme"] != "mtlb" || cells[0].Attrs["cached"] != "false" {
		t.Errorf("first-run cell attrs = %v", cells[0].Attrs)
	}

	// The identical job again: its cell is a cache hit, visible in the
	// second trace.
	id2 := submitOK(t, ts, JobSpec{Cells: []CellSpec{{Workload: "stride", TLB: 64, MTLB: 128}}, Scale: "small"})
	if st := waitTerminal(t, s, ts, id2); st.State != StateDone {
		t.Fatalf("repeat job state %s: %s", st.State, st.Error)
	}
	cells = spansByName(t, tr)["cell"]
	if len(cells) != 2 {
		t.Fatalf("got %d cell spans after repeat, want 2", len(cells))
	}
	if cells[1].Attrs["cached"] != "true" {
		t.Errorf("repeat cell attrs = %v, want cached=true", cells[1].Attrs)
	}
}

// TestUntracedServerOmitsTraceFields: with no tracer the API surface is
// byte-identical to the pre-telemetry daemon — no trace key anywhere.
func TestUntracedServerOmitsTraceFields(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1})
	id := submitOK(t, ts, cheapSpec(64))
	waitTerminal(t, s, ts, id)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(raw), `"trace"`) {
		t.Errorf("untraced status document leaks a trace field:\n%s", raw)
	}
	if len(s.Tracer().Spans()) != 0 {
		t.Errorf("nil tracer recorded spans")
	}
}

// TestMetricsContentNegotiation: the default stays JSON (curl and the
// existing tools), the Prometheus form is opt-in via query parameter or
// an explicit Accept, and the exposition passes its own linter with the
// scheme-labeled histogram family present.
func TestMetricsContentNegotiation(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1})
	id := submitOK(t, ts, JobSpec{Cells: []CellSpec{{Workload: "stride", TLB: 64, MTLB: 128}}, Scale: "small"})
	waitTerminal(t, s, ts, id)

	get := func(path, accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return string(raw), resp.Header.Get("Content-Type")
	}

	// Default (and curl's */*) stays the JSON dump.
	body, ct := get("/metrics", "*/*")
	if ct != "application/json" {
		t.Errorf("default /metrics content type %q", ct)
	}
	var dump []obs.DumpMetric
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("default /metrics is not the JSON dump: %v", err)
	}

	for _, req := range []struct{ path, accept string }{
		{"/metrics?format=prometheus", ""},
		{"/metrics", "text/plain"},
		{"/metrics", "application/openmetrics-text;version=1.0.0"},
	} {
		body, ct := get(req.path, req.accept)
		if !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s accept=%q: content type %q", req.path, req.accept, ct)
		}
		if errs := obs.LintPrometheus(strings.NewReader(body)); len(errs) != 0 {
			t.Fatalf("%s: exposition fails lint: %v\n%s", req.path, errs[0], body)
		}
		for _, want := range []string{
			"# TYPE serve_cell_wall_by_scheme_us histogram",
			`serve_cell_wall_by_scheme_us_count{scheme="mtlb"} 1`,
			"serve_jobs_submitted 1",
			`serve_cache_outcome{outcome="miss"} 1`,
			`serve_cache_outcome{outcome="disk"} 0`,
		} {
			if !strings.Contains(body, want) {
				t.Errorf("%s missing %q", req.path, want)
			}
		}
	}

	// The explicit format parameter beats Accept.
	if body, _ := get("/metrics?format=json", "text/plain"); !json.Valid([]byte(body)) {
		t.Errorf("format=json with text Accept did not return JSON")
	}
}

// TestHealthzReadyzSplit: liveness and readiness agree while serving;
// the drain test covers their divergence.
func TestHealthzReadyzSplit(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: HTTP %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestStreamTelemetry: consuming an event stream records a TTFB sample
// and, when tracing, a stream span parented under the job.
func TestStreamTelemetry(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1})
	tr := obs.NewTracer("mtlbd", nil, 0)
	s.SetTracer(tr)

	id := submitOK(t, ts, cheapSpec(64))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // consuming to terminal
	resp.Body.Close()

	spans := spansByName(t, tr)
	stream := spans["stream"]
	if len(stream) != 1 {
		t.Fatalf("got %d stream spans, want 1", len(stream))
	}
	if job := spans["job"]; len(job) != 1 || stream[0].Parent != job[0].Span {
		t.Errorf("stream span parent %q not the job span", stream[0].Parent)
	}
	if stream[0].Attrs["ttfb_us"] == "" {
		t.Errorf("stream span has no ttfb_us attr: %v", stream[0].Attrs)
	}

	var buf strings.Builder
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serve_stream_ttfb_us_count 1") {
		t.Errorf("stream TTFB histogram not observed:\n%s", buf.String())
	}
}
