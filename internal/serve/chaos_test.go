package serve

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shadowtlb/internal/exp/runner"
	"shadowtlb/internal/faultinject"
)

// chaosServer starts a server whose result cache is wrapped in a
// faultinject.ChaosCache with the given plan, returning the wrapper so
// tests can assert its injection counters.
func chaosServer(t *testing.T, cfg Config, plan faultinject.Plan, delay time.Duration) (*Server, *httptest.Server, *faultinject.ChaosCache) {
	t.Helper()
	s := New(cfg)
	cc := &faultinject.ChaosCache{Plan: plan, Evictor: s.Cache(), Delay: delay}
	s.SetCacheWrapper(func(inner runner.ExternalCache) runner.ExternalCache {
		cc.Inner = inner
		return cc
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain on cleanup: %v", err)
		}
	})
	return s, ts, cc
}

// TestChaosWorkerPanicIsolated injects a panic into every second led
// simulation: the unlucky job must fail with the panic surfaced in its
// error, and the jobs before and after it must be untouched — one bad
// cell never takes down the daemon.
func TestChaosWorkerPanicIsolated(t *testing.T) {
	s, ts, cc := chaosServer(t, Config{Workers: 2},
		faultinject.Plan{CachePanicEvery: 2}, 0)

	// Distinct cells so every job is a cache miss: jobs map 1:1 onto
	// ChaosCache calls, making "which job panics" deterministic.
	if st := waitTerminal(t, s, ts, submitOK(t, ts, cheapSpec(64))); st.State != StateDone {
		t.Fatalf("job 1 state %s (%s)", st.State, st.Error)
	}
	st := waitTerminal(t, s, ts, submitOK(t, ts, cheapSpec(128)))
	if st.State != StateFailed {
		t.Fatalf("job 2 state %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panicked") {
		t.Fatalf("job 2 error does not surface the panic: %q", st.Error)
	}
	if st := waitTerminal(t, s, ts, submitOK(t, ts, cheapSpec(256))); st.State != StateDone {
		t.Fatalf("job 3 after injected panic: state %s (%s)", st.State, st.Error)
	}
	if got := cc.Panics.Load(); got != 1 {
		t.Errorf("injected panics = %d, want 1", got)
	}
}

// TestChaosCacheDelayTripsDeadline stalls every cache lookup for far
// longer than the job's deadline: the job must expire as canceled (not
// hang, not fail as a simulation error) and release its executor.
func TestChaosCacheDelayTripsDeadline(t *testing.T) {
	s, ts, cc := chaosServer(t, Config{Workers: 2, JobWorkers: 1},
		faultinject.Plan{CacheDelayEvery: 1}, 10*time.Second)

	spec := cheapSpec(64)
	spec.TimeoutMS = 50
	st := waitTerminal(t, s, ts, submitOK(t, ts, spec))
	if st.State != StateCanceled {
		t.Fatalf("stalled job state %s (%s), want canceled", st.State, st.Error)
	}
	if got := cc.Delays.Load(); got == 0 {
		t.Error("no delay was injected")
	}
}

// TestChaosEvictUnderLoad evicts the LRU result after every lookup:
// identical jobs must keep succeeding by re-simulating, and the cache
// must end empty — refill under eviction pressure works.
func TestChaosEvictUnderLoad(t *testing.T) {
	s, ts, cc := chaosServer(t, Config{Workers: 2},
		faultinject.Plan{CacheEvictEvery: 1}, 0)

	for i := 0; i < 2; i++ {
		if st := waitTerminal(t, s, ts, submitOK(t, ts, cheapSpec(64))); st.State != StateDone {
			t.Fatalf("job %d under eviction: state %s (%s)", i+1, st.State, st.Error)
		}
	}
	if got := cc.Evictions.Load(); got != 2 {
		t.Errorf("evictions = %d, want 2 (one per stored result)", got)
	}
	if n := s.Cache().Len(); n != 0 {
		t.Errorf("cache holds %d results after evict-every-call plan", n)
	}
}

// TestChaosDroppedEventsClient opens the NDJSON event stream for a
// running job, reads one line, then slams the connection shut. The
// server must finish the job normally and keep serving other clients —
// a dead subscriber never blocks or fails its job.
func TestChaosDroppedEventsClient(t *testing.T) {
	s, ts := startServer(t, Config{JobWorkers: 2})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s.testExec = func(ctx context.Context, j *Job) (*JobResult, error) {
		j.start(0)
		started <- struct{}{}
		select {
		case <-release:
			return &JobResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	id := submitOK(t, ts, cheapSpec(64))
	<-started

	// Subscribe mid-run, take the first event, drop the connection.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first event before drop: %v", sc.Err())
	}
	resp.Body.Close() // abandon the stream mid-job

	close(release)
	if st := waitTerminal(t, s, ts, id); st.State != StateDone {
		t.Fatalf("job with dropped subscriber: state %s (%s)", st.State, st.Error)
	}

	// The server is still healthy: a fresh job with a fresh subscriber
	// streams to the terminal event.
	s.testExec = nil
	id2 := submitOK(t, ts, cheapSpec(64))
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + id2 + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var last string
	for sc := bufio.NewScanner(resp2.Body); sc.Scan(); {
		last = sc.Text()
	}
	if !strings.Contains(last, `"done"`) {
		t.Fatalf("post-drop stream did not end with done event: %q", last)
	}
}
