package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"shadowtlb/internal/core"
	"shadowtlb/internal/sim"
)

// startServer builds a started server plus its httptest front end.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain on cleanup: %v", err)
		}
	})
	return s, ts
}

// postJob submits a spec and returns the response.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// submitOK submits a spec and returns the accepted job id.
func submitOK(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	resp := postJob(t, ts, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// getStatus fetches a job status document.
func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal blocks on the job's done channel — closed strictly after
// the terminal state is published — then snapshots the status over HTTP.
// Event-driven, so it stays reliable under -race -count=5 load where
// poll loops flake.
func waitTerminal(t *testing.T, s *Server, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not registered", id)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s never reached a terminal state", id)
	}
	return getStatus(t, ts, id)
}

// cheapSpec is a fast real simulation job.
func cheapSpec(tlb int) JobSpec {
	return JobSpec{Cells: []CellSpec{{Workload: "stride", TLB: tlb}}, Scale: "small"}
}

func TestJobLifecycleAndEvents(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 2})
	id := submitOK(t, ts, JobSpec{
		Cells: []CellSpec{
			{Workload: "stride", TLB: 64},
			{Workload: "stride", TLB: 64}, // duplicate: one distinct cell
			{Workload: "stride", TLB: 128},
		},
		Scale: "small",
	})

	// Stream events to the end; the server closes the stream at the
	// terminal event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var types []string
	var cellEvents []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.JobID != id {
			t.Errorf("event for wrong job: %+v", ev)
		}
		types = append(types, ev.Type)
		if ev.Type == "cell" {
			cellEvents = append(cellEvents, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) < 3 || types[0] != "queued" || types[1] != "started" || types[len(types)-1] != "done" {
		t.Fatalf("event sequence %v", types)
	}
	if len(cellEvents) != 2 {
		t.Fatalf("%d cell events for 2 distinct cells", len(cellEvents))
	}

	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("state %s: %s", st.State, st.Error)
	}
	if st.Progress.CellsTotal != 2 || st.Progress.CellsDone != 2 {
		t.Errorf("progress %+v", st.Progress)
	}
	if len(st.Result.Cells) != 3 {
		t.Fatalf("%d cell results for 3 requested cells", len(st.Result.Cells))
	}
	if st.Result.Cells[0].Result != st.Result.Cells[1].Result {
		t.Error("duplicate cells returned different results")
	}
	if st.Result.Cells[0].Key == st.Result.Cells[2].Key {
		t.Error("distinct cells share a key")
	}
}

func TestExperimentJobRendersTables(t *testing.T) {
	s, ts := startServer(t, Config{})
	id := submitOK(t, ts, JobSpec{Experiments: []string{"tlbtime"}, Scale: "small"})
	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("state %s: %s", st.State, st.Error)
	}
	if len(st.Result.Experiments) != 1 || st.Result.Experiments[0].ID != "tlbtime" {
		t.Fatalf("experiments %+v", st.Result.Experiments)
	}
	tbl := st.Result.Experiments[0].Tables
	if len(tbl) == 0 || tbl[0].Text == "" || tbl[0].CSV == "" {
		t.Fatalf("empty rendered tables: %+v", tbl)
	}
	if st.Result.Manifest == nil || len(st.Result.Manifest.Cells) == 0 {
		t.Error("missing run manifest")
	}
}

func TestValidationRejects(t *testing.T) {
	_, ts := startServer(t, Config{})
	bad := []JobSpec{
		{}, // neither cells nor experiments
		{Cells: []CellSpec{{Workload: "stride"}}, Experiments: []string{"fig3"}}, // both
		{Cells: []CellSpec{{Workload: "no-such-workload"}}},
		{Cells: []CellSpec{{Workload: "stride", Scale: "huge"}}},
		{Experiments: []string{"no-such-experiment"}},
		{Experiments: []string{"fig3"}, Scale: "huge"},
	}
	for i, spec := range bad {
		resp := postJob(t, ts, spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d: HTTP %d, want 400", i, resp.StatusCode)
		}
	}
	// Malformed JSON and unknown fields are 400 too.
	for _, body := range []string{"{", `{"cels": []}`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestSchemeAdmission covers the translation-scheme field end to end:
// unknown schemes are 400s whose body names the registered set (both in
// the shortcut spec and inside a full Config), and a job using a
// registered non-default backend runs to completion and reports that
// scheme in its result.
func TestSchemeAdmission(t *testing.T) {
	s, ts := startServer(t, Config{})

	fullCfg := sim.Default().WithMTLB(core.DefaultMTLBConfig()).WithScheme("bogus")
	for i, spec := range []JobSpec{
		{Cells: []CellSpec{{Workload: "stride", MTLB: 128, Scheme: "bogus"}}, Scale: "small"},
		{Cells: []CellSpec{{Workload: "stride", Config: &fullCfg}}, Scale: "small"},
	} {
		resp := postJob(t, ts, spec)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %d: HTTP %d, want 400", i, resp.StatusCode)
		}
		for _, want := range append([]string{"bogus"}, core.SchemeNames()...) {
			if !strings.Contains(string(body), want) {
				t.Errorf("spec %d: 400 body %q does not name %q", i, body, want)
			}
		}
	}

	id := submitOK(t, ts, JobSpec{
		Cells: []CellSpec{{Workload: "stride", TLB: 64, MTLB: 128, Scheme: core.SchemeCoalesced}},
		Scale: "small",
	})
	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	if got := st.Result.Cells[0].Result.Scheme; got != core.SchemeCoalesced {
		t.Errorf("result scheme = %q, want %q", got, core.SchemeCoalesced)
	}
}

func TestOverloadReturns429WithRetryAfter(t *testing.T) {
	const queueCap = 3
	s, ts := startServer(t, Config{QueueCap: queueCap, JobWorkers: 1})
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	s.testExec = func(ctx context.Context, j *Job) (*JobResult, error) {
		j.start(0)
		started <- struct{}{}
		select {
		case <-block:
			return &JobResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// The first job occupies the single executor — wait until it has
	// been dequeued, so the queue is observably empty before filling it.
	// Then queueCap more fill the queue exactly, and every submission
	// beyond that must bounce with 429 + Retry-After.
	var ids []string
	ids = append(ids, submitOK(t, ts, cheapSpec(64)))
	<-started
	for i := 0; i < queueCap; i++ {
		ids = append(ids, submitOK(t, ts, cheapSpec(64)))
	}
	for i := 0; i < 3; i++ {
		resp := postJob(t, ts, cheapSpec(64))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("overflow submit %d: HTTP %d, want 429", i, resp.StatusCode)
			resp.Body.Close()
			continue
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Error("429 without Retry-After")
		}
		var doc struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.Error == "" {
			t.Errorf("429 without JSON error: %v", err)
		}
		resp.Body.Close()
	}

	// Admitted jobs all complete once unblocked.
	close(block)
	for _, id := range ids {
		if st := waitTerminal(t, s, ts, id); st.State != StateDone {
			t.Errorf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
}

func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	s, ts := startServer(t, Config{JobWorkers: 2})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s.testExec = func(ctx context.Context, j *Job) (*JobResult, error) {
		j.start(0)
		started <- struct{}{}
		<-release
		return &JobResult{}, nil
	}

	id := submitOK(t, ts, cheapSpec(64))
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Draining must become observable, then new submissions bounce with
	// 503 and readiness degrades — while liveness stays green so an
	// orchestrator does not kill the daemon mid-drain.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	resp := postJob(t, ts, cheapSpec(64))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: HTTP %d, want 503", rz.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: HTTP %d, want 200", hz.StatusCode)
	}

	// The in-flight job holds the drain open until released.
	select {
	case err := <-drained:
		t.Fatalf("drain returned with a job in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := getStatus(t, ts, id); st.State != StateDone {
		t.Errorf("in-flight job after drain: %s", st.State)
	}
}

// TestDrainFlushesTerminalEventToOpenStream pins the graceful-shutdown
// contract a streaming client depends on: a drain that begins while an
// NDJSON event stream is open mid-job must let the job finish and flush
// its terminal event down that same stream — not sever the connection —
// so `mtlbexp -server` against a SIGTERMed daemon sees a clean "done"
// line instead of an EOF mid-read.
func TestDrainFlushesTerminalEventToOpenStream(t *testing.T) {
	s, ts := startServer(t, Config{JobWorkers: 2})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testExec = func(ctx context.Context, j *Job) (*JobResult, error) {
		j.start(0)
		started <- struct{}{}
		<-release
		return &JobResult{}, nil
	}

	id := submitOK(t, ts, cheapSpec(64))
	<-started

	// Open the stream while the job is provably mid-execution.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(chan string)
	scanErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		scanErr <- sc.Err()
		close(lines)
	}()
	// The stream replays at least the queued event before any terminal
	// one; consume until the job is visibly started on the wire.
	waitType := func(want string) {
		t.Helper()
		for line := range lines {
			var ev Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("bad event line %q: %v", line, err)
			}
			if ev.Type == want {
				return
			}
		}
		t.Fatalf("stream closed before %q event", want)
	}
	waitType("started")

	// Drain begins mid-stream, mid-job.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	close(release)

	// The open stream must end with the flushed terminal event.
	waitType("done")
	for range lines { // drain any trailing lines until close
	}
	if err := <-scanErr; err != nil {
		t.Fatalf("stream read after drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestCancelAndDeadlineReleaseWorkers(t *testing.T) {
	s, ts := startServer(t, Config{JobWorkers: 1, Workers: 2})
	baseline := runtime.NumGoroutine()

	// A held cancelable job.
	started := make(chan struct{}, 4)
	s.testExec = func(ctx context.Context, j *Job) (*JobResult, error) {
		j.start(0)
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	id := submitOK(t, ts, cheapSpec(64))
	<-started
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := waitTerminal(t, s, ts, id); st.State != StateCanceled {
		t.Fatalf("canceled job state %s", st.State)
	}

	// A deadline job.
	id2 := submitOK(t, ts, JobSpec{Cells: []CellSpec{{Workload: "stride"}}, Scale: "small", TimeoutMS: 20})
	if st := waitTerminal(t, s, ts, id2); st.State != StateCanceled {
		t.Fatalf("deadline job state %s (%s)", st.State, st.Error)
	}

	// The executor slot is free again: a real job completes.
	s.testExec = nil
	id3 := submitOK(t, ts, cheapSpec(64))
	if st := waitTerminal(t, s, ts, id3); st.State != StateDone {
		t.Fatalf("post-cancel job state %s (%s)", st.State, st.Error)
	}

	// No goroutines leaked from the canceled jobs (allow scheduler and
	// httptest slack).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after canceled jobs", baseline, runtime.NumGoroutine())
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts := startServer(t, Config{JobWorkers: 1})
	release := make(chan struct{})
	s.testExec = func(ctx context.Context, j *Job) (*JobResult, error) {
		j.start(0)
		select {
		case <-release:
			return &JobResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	blocker := submitOK(t, ts, cheapSpec(64))
	queued := submitOK(t, ts, cheapSpec(96))

	j, ok := s.Job(queued)
	if !ok {
		t.Fatal("queued job not registered")
	}
	j.Cancel()
	close(release)
	if st := waitTerminal(t, s, ts, queued); st.State != StateCanceled {
		t.Errorf("queued-then-canceled job: %s", st.State)
	}
	if st := waitTerminal(t, s, ts, blocker); st.State != StateDone {
		t.Errorf("blocker job: %s (%s)", st.State, st.Error)
	}
}

func TestPanickingJobFailsAlone(t *testing.T) {
	s, ts := startServer(t, Config{JobWorkers: 1})
	s.testExec = func(ctx context.Context, j *Job) (*JobResult, error) {
		j.start(0)
		panic("deliberate test panic")
	}
	id := submitOK(t, ts, cheapSpec(64))
	st := waitTerminal(t, s, ts, id)
	if st.State != StateFailed || !strings.Contains(st.Error, "deliberate test panic") {
		t.Fatalf("panicking job: state %s, error %q", st.State, st.Error)
	}

	// The executor survived; the next job runs.
	s.testExec = nil
	id2 := submitOK(t, ts, cheapSpec(64))
	if st := waitTerminal(t, s, ts, id2); st.State != StateDone {
		t.Fatalf("job after panic: %s (%s)", st.State, st.Error)
	}
}

func TestExperimentsAndMetricsEndpoints(t *testing.T) {
	_, ts := startServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var infos []ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) == 0 {
		t.Fatal("no experiments listed")
	}
	ids := map[string]bool{}
	for _, in := range infos {
		ids[in.ID] = true
	}
	for _, want := range []string{"fig3", "fig4", "tlbtime", "reach"} {
		if !ids[want] {
			t.Errorf("experiment %s missing from listing", want)
		}
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var dump []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(mr.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	names := map[string]bool{}
	for _, m := range dump {
		names[m.Name] = true
	}
	for _, want := range []string{
		"serve.jobs_submitted", "serve.jobs_rejected", "serve.queue_depth",
		"serve.jobs_inflight", "serve.cache_hits", "serve.cache_misses",
		"serve.cell_wall_us", "serve.job_wall_us",
	} {
		if !names[want] {
			t.Errorf("metric %s missing from /metrics", want)
		}
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestConcurrentClientsShareCache(t *testing.T) {
	clients := 64
	perClient := 2
	if testing.Short() {
		clients = 16
	}
	s, ts := startServer(t, Config{QueueCap: clients * perClient, JobWorkers: 4})

	// Overlapping traffic: 64 clients draw from 4 distinct cells.
	specs := []JobSpec{cheapSpec(64), cheapSpec(96), cheapSpec(128), cheapSpec(192)}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				id := submitOK(t, ts, specs[(i+k)%len(specs)])
				st := waitTerminal(t, s, ts, id)
				if st.State != StateDone {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("%s: %s (%s)", id, st.State, st.Error))
					mu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("%d failed jobs under concurrency: %v", len(failures), failures)
	}

	hits, misses := s.Cache().Stats()
	if misses != uint64(len(specs)) {
		t.Errorf("distinct cells simulated %d times, want %d", misses, len(specs))
	}
	total := hits + misses
	if rate := float64(hits) / float64(total); rate <= 0.5 {
		t.Errorf("cache hit rate %.2f (hits %d / total %d), want > 0.5", rate, hits, total)
	}
}
