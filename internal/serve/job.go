package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"shadowtlb/internal/core"
	"shadowtlb/internal/exp"
	"shadowtlb/internal/exp/runner"
	"shadowtlb/internal/obs"
	"shadowtlb/internal/sim"
)

// JobSpec is the body of POST /v1/jobs. Exactly one of Cells or
// Experiments must be set: a batch of individual simulation cells, or a
// list of registered experiment ids ("all" expands to every id).
type JobSpec struct {
	Cells       []CellSpec `json:"cells,omitempty"`
	Experiments []string   `json:"experiments,omitempty"`
	// Scale is the workload scale, "paper" (default) or "small".
	Scale string `json:"scale,omitempty"`
	// TimeoutMS caps the job's run time; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CellSpec names one simulation cell. The zero-config shortcuts cover
// the common sweep axes; Config, when set, overrides them with a full
// machine description.
type CellSpec struct {
	Workload string `json:"workload"`
	// Scale overrides the job's scale for this cell.
	Scale string `json:"scale,omitempty"`
	// TLB is the CPU TLB entry count (0 = the default 96).
	TLB int `json:"tlb,omitempty"`
	// MTLB enables a memory-controller TLB with this many entries.
	MTLB int `json:"mtlb,omitempty"`
	// Ways is the MTLB associativity (0 = the default 2).
	Ways int `json:"ways,omitempty"`
	// Scheme selects the MMC translation backend for MTLB-fitted cells
	// ("" = the paper's MTLB); unknown names are rejected at admission.
	Scheme string `json:"scheme,omitempty"`
	// Config, when non-nil, is the complete machine configuration and
	// the shortcuts above are ignored.
	Config *sim.Config `json:"config,omitempty"`
}

// cell resolves the spec into an executable cell. defScheme is the
// server's default translation backend, applied when a shortcut spec
// leaves Scheme unset; a full Config is taken verbatim.
func (cs CellSpec) cell(def exp.Scale, defScheme string) (exp.Cell, error) {
	s := def
	if cs.Scale != "" {
		var err error
		if s, err = exp.ParseScale(cs.Scale); err != nil {
			return exp.Cell{}, err
		}
	}
	if !exp.HasWorkload(cs.Workload) {
		return exp.Cell{}, fmt.Errorf("unknown workload %q", cs.Workload)
	}
	var cfg sim.Config
	if cs.Config != nil {
		cfg = *cs.Config
		if cfg.DRAMBytes == 0 {
			return exp.Cell{}, fmt.Errorf("cell config for %q has zero DRAM", cs.Workload)
		}
		if !core.HasScheme(cfg.Scheme) {
			return exp.Cell{}, fmt.Errorf("cell config for %q: %w", cs.Workload, schemeError(cfg.Scheme))
		}
	} else {
		cfg = sim.Default()
		if cs.TLB > 0 {
			cfg = cfg.WithTLB(cs.TLB)
		}
		if cs.MTLB > 0 {
			ways := cs.Ways
			if ways <= 0 {
				ways = 2
			}
			cfg = cfg.WithMTLB(core.MTLBConfig{Entries: cs.MTLB, Ways: ways})
		}
		scheme := cs.Scheme
		if scheme == "" {
			scheme = defScheme
		}
		if !core.HasScheme(scheme) {
			return exp.Cell{}, schemeError(scheme)
		}
		cfg = cfg.WithScheme(scheme)
	}
	return exp.NewCell(cfg, cs.Workload, s), nil
}

// schemeError builds the admission error for an unregistered scheme,
// reusing the registry's canonical message so flags and the API agree.
func schemeError(scheme string) error {
	_, err := core.NewTranslator(scheme, core.MTLBConfig{}, core.TranslatorDeps{})
	return err
}

// JobState is a job's lifecycle position.
type JobState string

// Job states. Queued and running are live; the rest are terminal.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress tracks a job's per-cell completion.
type Progress struct {
	CellsTotal int `json:"cells_total"`
	CellsDone  int `json:"cells_done"`
	// CacheHits counts cells served from the daemon's result cache
	// instead of simulated for this job.
	CacheHits int `json:"cache_hits"`
}

// JobStatus is the GET /v1/jobs/{id} document.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Trace is the job's trace ID (32 hex digits) when the daemon runs
	// with tracing on; empty otherwise. Clients log it to correlate a
	// submission with the daemon's trace file.
	Trace    string     `json:"trace,omitempty"`
	Error    string     `json:"error,omitempty"`
	Spec     JobSpec    `json:"spec"`
	Progress Progress   `json:"progress"`
	Result   *JobResult `json:"result,omitempty"`
}

// JobResult is a completed job's payload.
type JobResult struct {
	Cells       []CellResult        `json:"cells,omitempty"`
	Experiments []ExperimentResult  `json:"experiments,omitempty"`
	Manifest    *runner.RunManifest `json:"manifest,omitempty"`
}

// CellResult pairs one requested cell with its measurements.
type CellResult struct {
	Key      string     `json:"key"`
	Label    string     `json:"label"`
	Workload string     `json:"workload"`
	Result   sim.Result `json:"result"`
}

// ExperimentResult carries one experiment's rendered tables. Text and
// CSV are the exact strings local mtlbexp would print, so a client can
// reproduce local output byte for byte.
type ExperimentResult struct {
	ID     string          `json:"id"`
	Tables []RenderedTable `json:"tables"`
}

// RenderedTable is one table in both output encodings.
type RenderedTable struct {
	Text string `json:"text"`
	CSV  string `json:"csv"`
}

// CellLookup is the GET /v1/cache?key= document: one cached cell
// result, served from this daemon's memory or disk tier without
// simulating. It is how cluster peers read each other's caches.
type CellLookup struct {
	Key    string     `json:"key"`
	Result sim.Result `json:"result"`
}

// NodeInfo is the GET /v1/node document: the daemon's cluster identity
// and instantaneous load, consumed by coordinators (routing and health)
// and dashboards.
type NodeInfo struct {
	NodeID       string `json:"node_id"`
	Workers      int    `json:"workers"`
	QueueDepth   int    `json:"queue_depth"`
	Inflight     int    `json:"inflight"`
	Draining     bool   `json:"draining"`
	CacheEntries int    `json:"cache_entries"`
}

// Event is one NDJSON line of GET /v1/jobs/{id}/events.
type Event struct {
	// Type is queued, started, cell, done, failed or canceled.
	Type  string `json:"type"`
	JobID string `json:"job_id"`

	// Cell completions.
	Key      string `json:"key,omitempty"`
	Label    string `json:"label,omitempty"`
	Workload string `json:"workload,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	WallNS   int64  `json:"wall_ns,omitempty"`

	CellsDone  int `json:"cells_done,omitempty"`
	CellsTotal int `json:"cells_total,omitempty"`

	Error string `json:"error,omitempty"`
}

// Job is one admitted request moving through the queue and worker pool.
type Job struct {
	id        string
	spec      JobSpec
	submitted time.Time // admission instant, for queue-wait telemetry
	span      *obs.Span // root span; nil when tracing is off

	mu       sync.Mutex
	state    JobState
	err      error
	result   *JobResult
	progress Progress
	events   []Event
	wake     chan struct{} // closed and replaced on every event append
	cancel   context.CancelFunc
	done     chan struct{} // closed on entering a terminal state
}

// newJob returns a queued job with its admission event recorded.
func newJob(id string, spec JobSpec) *Job {
	j := &Job{
		id:        id,
		spec:      spec,
		submitted: time.Now(),
		state:     StateQueued,
		wake:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	j.append(Event{Type: "queued", JobID: id})
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// SpanContext returns the job's root span identity, zero when the
// daemon runs without tracing. Stream handlers parent their spans here.
func (j *Job) SpanContext() obs.SpanContext { return j.span.Context() }

// TraceID returns the job's trace ID string, "" without tracing.
func (j *Job) TraceID() string {
	if sc := j.span.Context(); sc.Valid() {
		return sc.Trace.String()
	}
	return ""
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// append records an event and wakes streaming subscribers. Callers must
// not hold j.mu.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
}

// eventsSince returns a copy of the events from index i on, the channel
// that signals the next append, and whether the job is terminal.
func (j *Job) eventsSince(i int) (evs []Event, wake <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		evs = append(evs, j.events[i:]...)
	}
	return evs, j.wake, j.state.Terminal()
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		State:    j.state,
		Trace:    j.TraceID(),
		Spec:     j.spec,
		Progress: j.progress,
		Result:   j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setCancel installs the running job's cancel function.
func (j *Job) setCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
}

// Cancel requests cancellation of a running job; queued cells are
// dropped, in-flight simulations complete, and the job finishes in
// state canceled. Canceling a queued job takes effect when an executor
// picks it up. No-op on a terminal job.
func (j *Job) Cancel() {
	j.mu.Lock()
	canceled := j.cancel
	if !j.state.Terminal() {
		j.err = context.Canceled
	}
	j.mu.Unlock()
	if canceled != nil {
		canceled()
	}
}

// canceledEarly reports whether Cancel arrived before the job ran.
func (j *Job) canceledEarly() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err != nil && j.state == StateQueued
}

// start moves the job to running.
func (j *Job) start(total int) {
	j.mu.Lock()
	j.state = StateRunning
	j.progress.CellsTotal = total
	j.mu.Unlock()
	j.append(Event{Type: "started", JobID: j.id, CellsTotal: total})
}

// cellDone records one distinct cell completion.
func (j *Job) cellDone(ev runner.CellEvent) {
	j.mu.Lock()
	j.progress.CellsDone++
	if ev.Cached {
		j.progress.CacheHits++
	}
	done, total := j.progress.CellsDone, j.progress.CellsTotal
	j.mu.Unlock()
	j.append(Event{
		Type: "cell", JobID: j.id,
		Key: ev.Key, Label: ev.Label, Workload: ev.Workload,
		Cached: ev.Cached, WallNS: ev.WallNS,
		CellsDone: done, CellsTotal: total,
	})
}

// finish moves the job to a terminal state and emits the final event.
// The state change and the event append happen under one lock section,
// so a streamer never observes a terminal state without its final
// event.
func (j *Job) finish(res *JobResult, err error) {
	j.mu.Lock()
	ev := Event{JobID: j.id}
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		ev.Type = "done"
	case isCancellation(err):
		j.state = StateCanceled
		j.err = err
		ev.Type = "canceled"
		ev.Error = err.Error()
	default:
		j.state = StateFailed
		j.err = err
		ev.Type = "failed"
		ev.Error = err.Error()
	}
	ev.CellsDone = j.progress.CellsDone
	ev.CellsTotal = j.progress.CellsTotal
	state := j.state
	j.events = append(j.events, ev)
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
	j.span.SetAttr("state", string(state))
	j.span.End()
	close(j.done)
}

// isCancellation reports whether err stems from a canceled or expired
// job context rather than a simulation failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
