package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"shadowtlb/internal/obs"
)

// Admission errors. Handlers map them onto status codes; embedding
// programs that call Submit directly can test with errors.Is.
var (
	// ErrQueueFull means the bounded admission queue is at capacity;
	// HTTP clients get 429 with Retry-After.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining means the server is shutting down and admission is
	// closed; HTTP clients get 503.
	ErrDraining = errors.New("serve: draining, not accepting jobs")
)

// BadRequestError marks a validation failure (HTTP 400).
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// errorBody is the JSON error document every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec, get {"id": ...} (202);
//	                            a traceparent header joins the caller's trace
//	GET    /v1/jobs/{id}        job status, result inline when done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events NDJSON event stream until terminal
//	GET    /v1/experiments      registered experiment ids
//	GET    /v1/cache?key=K      cached cell result lookup, never simulates
//	                            (the cluster cache-peering primitive)
//	GET    /v1/node             node identity and load, for cluster
//	                            coordinators and dashboards
//	GET    /healthz             liveness: 200 while the process serves
//	GET    /readyz              readiness: 200 accepting / 503 draining
//	GET    /metrics             JSON dump, or Prometheus text exposition
//	                            via ?format=prometheus or Accept
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/cache", s.handleCachePeek)
	mux.HandleFunc("GET /v1/node", s.handleNode)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// DecodeJobSpec parses one job-spec document, rejecting unknown fields.
// It is exactly the decoder the submit endpoint runs, factored out so
// the fuzz harness exercises the same code path the API does.
func DecodeJobSpec(r io.Reader) (JobSpec, error) {
	var spec JobSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, err
	}
	return spec, nil
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError emits the uniform JSON error document.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// handleSubmit admits a job or rejects it with the admission-control
// status codes: 400 malformed, 429 queue full (with Retry-After), 503
// draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	// A caller-supplied traceparent joins the job to the client's trace;
	// a malformed header never fails the request — the daemon just mints
	// a fresh trace. Parsed only with tracing on, so the disabled path
	// does not touch headers.
	var parent obs.SpanContext
	if s.tracer != nil {
		if sc, ok := obs.ParseTraceParent(r.Header.Get("traceparent")); ok {
			parent = sc
		}
	}
	j, err := s.SubmitTraced(spec, parent)
	if err != nil {
		var bad *BadRequestError
		switch {
		case errors.As(err, &bad):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		ID    string `json:"id"`
		Trace string `json:"trace,omitempty"`
	}{ID: j.ID(), Trace: j.TraceID()})
}

// handleStatus returns a job's status document; the result rides along
// once the job is done.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleCancel requests cancellation and returns the (possibly already
// terminal) status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's event log as NDJSON: everything
// recorded so far immediately, then live events until the job reaches a
// terminal state or the client disconnects. Each line is one Event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	start := time.Now()
	span := s.tracer.StartSpan("stream", j.SpanContext())
	defer span.End()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	sent := 0
	for {
		evs, wake, terminal := j.eventsSince(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if sent == 0 && next > 0 {
			// First flushed line: the stream's time to first byte.
			ttfb := time.Since(start)
			s.mStreamTTFB.Observe(uint64(ttfb.Microseconds()))
			span.SetAttr("ttfb_us", strconv.FormatInt(ttfb.Microseconds(), 10))
		}
		sent = next
		if terminal {
			// finish appends the final event and the terminal state in
			// one critical section, so this snapshot is complete.
			span.SetAttr("events", strconv.Itoa(sent))
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleCachePeek answers a cache-peering lookup: the cell result for
// ?key= from this daemon's memory or disk tier, 404 when absent. It
// never simulates — a peer asking "do you have this?" must get a cheap
// answer — so a cluster coordinator can turn any node's past work into
// a cluster-wide hit. Keys are canonical cell keys (exp.Cell.Key), sent
// URL-encoded because they contain separators.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing key parameter"))
		return
	}
	res, ok := s.cache.Peek(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for key"))
		return
	}
	writeJSON(w, http.StatusOK, CellLookup{Key: key, Result: res})
}

// handleNode reports this daemon's cluster identity and instantaneous
// load — what a coordinator's health monitor and mtlbtop consume.
func (s *Server) handleNode(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, NodeInfo{
		NodeID:       s.cfg.NodeID,
		Workers:      s.Workers(),
		QueueDepth:   s.QueueDepth(),
		Inflight:     s.Inflight(),
		Draining:     s.Draining(),
		CacheEntries: s.cache.Len(),
	})
}

// handleExperiments lists the experiment registry.
func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Experiments())
}

// handleHealthz reports liveness: 200 whenever the process is serving
// at all — including while draining, when in-flight jobs are still
// finishing and status queries must keep working. Orchestrators that
// restart on failed liveness must not kill a draining daemon; gate
// traffic with /readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleReadyz reports readiness for new work: 200 while admission is
// open, 503 once drain begins — the signal load balancers use to stop
// routing submissions at a daemon that will 503 them anyway.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}

// handleMetrics serves the registry in the caller's preferred encoding:
// the JSON dump by default (what mtlbload and mtlbtop parse), or the
// Prometheus text exposition when ?format=prometheus is given or the
// Accept header asks for text/plain or OpenMetrics. The explicit query
// parameter wins over Accept.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteDump(w) //nolint:errcheck // client gone; nothing to do
}

// wantsPrometheus decides the /metrics encoding. Browsers and curl send
// Accept: */* which stays JSON, so existing tooling is unchanged;
// Prometheus scrapers send an explicit text/plain (or OpenMetrics)
// preference.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}
