package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"shadowtlb/internal/obs"
	"shadowtlb/internal/serve"
)

// startDaemon stands up a real traced serve.Server behind httptest.
func startDaemon(t *testing.T) (*serve.Server, *obs.Tracer, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Config{Workers: 2})
	tr := obs.NewTracer("mtlbd", nil, 0)
	s.SetTracer(tr)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort teardown
	})
	return s, tr, ts
}

// TestTraceContextRoundTrip is the cross-process propagation check: a
// traced client Run produces client-side submit/wait spans and
// daemon-side job spans in ONE trace, with the daemon's job span
// parented under the client's root.
func TestTraceContextRoundTrip(t *testing.T) {
	_, daemonTr, ts := startDaemon(t)

	clientTr := obs.NewTracer("mtlbexp", nil, 0)
	root := clientTr.StartSpan("invocation", obs.SpanContext{})
	c := New(ts.URL, nil)
	c.SetTracer(clientTr, root.Context())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	spec := serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 64}}, Scale: "small"}
	st, err := c.Run(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	root.End()

	traceID := root.Context().Trace.String()
	if st.Trace != traceID {
		t.Errorf("daemon reported trace %q, want the client's %q", st.Trace, traceID)
	}

	// Client side: invocation, submit, wait — all one trace.
	clientNames := map[string]obs.SpanRecord{}
	for _, s := range clientTr.Spans() {
		if s.Trace != traceID {
			t.Errorf("client span %q in trace %s, want %s", s.Name, s.Trace, traceID)
		}
		clientNames[s.Name] = s
	}
	for _, name := range []string{"invocation", "submit", "wait"} {
		if _, ok := clientNames[name]; !ok {
			t.Errorf("client recorded no %q span", name)
		}
	}

	// Daemon side: the job span joined the same trace, parented under
	// the client's submit span, with the full tree beneath it.
	daemonNames := map[string]obs.SpanRecord{}
	for _, s := range daemonTr.Spans() {
		daemonNames[s.Name] = s
	}
	job, ok := daemonNames["job"]
	if !ok {
		t.Fatal("daemon recorded no job span")
	}
	if job.Trace != traceID {
		t.Errorf("daemon job span in trace %s, want %s", job.Trace, traceID)
	}
	if job.Parent != clientNames["submit"].Span {
		t.Errorf("job span parent %s, want client submit span %s",
			job.Parent, clientNames["submit"].Span)
	}
	for _, name := range []string{"admission", "run", "cell"} {
		s, ok := daemonNames[name]
		if !ok {
			t.Errorf("daemon recorded no %q span", name)
			continue
		}
		if s.Trace != traceID {
			t.Errorf("daemon %s span in trace %s, want %s", name, s.Trace, traceID)
		}
	}
}

// TestRelayOnlyTraceParent: SetTraceParent propagates an upstream
// context without a client-side tracer, and the untraced client sends
// no header at all.
func TestRelayOnlyTraceParent(t *testing.T) {
	_, daemonTr, ts := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	spec := serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 96}}, Scale: "small"}

	upstream := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	c := New(ts.URL, nil)
	c.SetTraceParent(upstream.TraceParent())
	st, err := c.Run(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace != upstream.Trace.String() {
		t.Errorf("relayed trace %q, want %q", st.Trace, upstream.Trace)
	}

	// Garbage input clears the context; the daemon mints a fresh trace.
	c2 := New(ts.URL, nil)
	c2.SetTraceParent("not-a-traceparent")
	st2, err := c2.Run(ctx, serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 128}}, Scale: "small"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Trace == "" || st2.Trace == upstream.Trace.String() {
		t.Errorf("fresh trace %q, want a new non-empty id", st2.Trace)
	}
	if len(daemonTr.Spans()) == 0 {
		t.Error("daemon recorded no spans")
	}
}

// TestRequestObserver: OnRequest sees every non-stream API call with
// route shapes, statuses and durations — the hook mtlbload's latency
// percentiles hang off.
func TestRequestObserver(t *testing.T) {
	_, _, ts := startDaemon(t)
	c := New(ts.URL, nil)
	var infos []RequestInfo
	c.OnRequest(func(ri RequestInfo) { infos = append(infos, ri) })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Readyz(ctx); err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(ctx, serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 64}}, Scale: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(ctx, id); err != nil {
		t.Fatal(err)
	}

	want := []struct{ method, path string }{
		{"GET", "/readyz"},
		{"POST", "/v1/jobs"},
		{"GET", "/v1/jobs/{id}"},
	}
	if len(infos) != len(want) {
		t.Fatalf("observer saw %d requests, want %d: %+v", len(infos), len(want), infos)
	}
	for i, w := range want {
		ri := infos[i]
		if ri.Method != w.method || ri.Path != w.path {
			t.Errorf("request %d: %s %s, want %s %s", i, ri.Method, ri.Path, w.method, w.path)
		}
		if ri.Status < 200 || ri.Status > 299 {
			t.Errorf("request %d: status %d", i, ri.Status)
		}
		if ri.Dur <= 0 {
			t.Errorf("request %d: non-positive duration", i)
		}
	}
}
