package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shadowtlb/internal/obs"
	"shadowtlb/internal/serve"
)

// startDaemon stands up a real traced serve.Server behind httptest.
func startDaemon(t *testing.T) (*serve.Server, *obs.Tracer, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Config{Workers: 2})
	tr := obs.NewTracer("mtlbd", nil, 0)
	s.SetTracer(tr)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort teardown
	})
	return s, tr, ts
}

// TestTraceContextRoundTrip is the cross-process propagation check: a
// traced client Run produces client-side submit/wait spans and
// daemon-side job spans in ONE trace, with the daemon's job span
// parented under the client's root.
func TestTraceContextRoundTrip(t *testing.T) {
	_, daemonTr, ts := startDaemon(t)

	clientTr := obs.NewTracer("mtlbexp", nil, 0)
	root := clientTr.StartSpan("invocation", obs.SpanContext{})
	c := New(ts.URL, nil)
	c.SetTracer(clientTr, root.Context())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	spec := serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 64}}, Scale: "small"}
	st, err := c.Run(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	root.End()

	traceID := root.Context().Trace.String()
	if st.Trace != traceID {
		t.Errorf("daemon reported trace %q, want the client's %q", st.Trace, traceID)
	}

	// Client side: invocation, submit, wait — all one trace.
	clientNames := map[string]obs.SpanRecord{}
	for _, s := range clientTr.Spans() {
		if s.Trace != traceID {
			t.Errorf("client span %q in trace %s, want %s", s.Name, s.Trace, traceID)
		}
		clientNames[s.Name] = s
	}
	for _, name := range []string{"invocation", "submit", "wait"} {
		if _, ok := clientNames[name]; !ok {
			t.Errorf("client recorded no %q span", name)
		}
	}

	// Daemon side: the job span joined the same trace, parented under
	// the client's submit span, with the full tree beneath it.
	daemonNames := map[string]obs.SpanRecord{}
	for _, s := range daemonTr.Spans() {
		daemonNames[s.Name] = s
	}
	job, ok := daemonNames["job"]
	if !ok {
		t.Fatal("daemon recorded no job span")
	}
	if job.Trace != traceID {
		t.Errorf("daemon job span in trace %s, want %s", job.Trace, traceID)
	}
	if job.Parent != clientNames["submit"].Span {
		t.Errorf("job span parent %s, want client submit span %s",
			job.Parent, clientNames["submit"].Span)
	}
	for _, name := range []string{"admission", "run", "cell"} {
		s, ok := daemonNames[name]
		if !ok {
			t.Errorf("daemon recorded no %q span", name)
			continue
		}
		if s.Trace != traceID {
			t.Errorf("daemon %s span in trace %s, want %s", name, s.Trace, traceID)
		}
	}
}

// TestRelayOnlyTraceParent: SetTraceParent propagates an upstream
// context without a client-side tracer, and the untraced client sends
// no header at all.
func TestRelayOnlyTraceParent(t *testing.T) {
	_, daemonTr, ts := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	spec := serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 96}}, Scale: "small"}

	upstream := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	c := New(ts.URL, nil)
	c.SetTraceParent(upstream.TraceParent())
	st, err := c.Run(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace != upstream.Trace.String() {
		t.Errorf("relayed trace %q, want %q", st.Trace, upstream.Trace)
	}

	// Garbage input clears the context; the daemon mints a fresh trace.
	c2 := New(ts.URL, nil)
	c2.SetTraceParent("not-a-traceparent")
	st2, err := c2.Run(ctx, serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 128}}, Scale: "small"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Trace == "" || st2.Trace == upstream.Trace.String() {
		t.Errorf("fresh trace %q, want a new non-empty id", st2.Trace)
	}
	if len(daemonTr.Spans()) == 0 {
		t.Error("daemon recorded no spans")
	}
}

// TestRequestObserver: OnRequest sees every non-stream API call with
// route shapes, statuses and durations — the hook mtlbload's latency
// percentiles hang off.
func TestRequestObserver(t *testing.T) {
	_, _, ts := startDaemon(t)
	c := New(ts.URL, nil)
	var infos []RequestInfo
	c.OnRequest(func(ri RequestInfo) { infos = append(infos, ri) })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Readyz(ctx); err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(ctx, serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 64}}, Scale: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(ctx, id); err != nil {
		t.Fatal(err)
	}

	want := []struct{ method, path string }{
		{"GET", "/readyz"},
		{"POST", "/v1/jobs"},
		{"GET", "/v1/jobs/{id}"},
	}
	if len(infos) != len(want) {
		t.Fatalf("observer saw %d requests, want %d: %+v", len(infos), len(want), infos)
	}
	for i, w := range want {
		ri := infos[i]
		if ri.Method != w.method || ri.Path != w.path {
			t.Errorf("request %d: %s %s, want %s %s", i, ri.Method, ri.Path, w.method, w.path)
		}
		if ri.Status < 200 || ri.Status > 299 {
			t.Errorf("request %d: status %d", i, ri.Status)
		}
		if ri.Dur <= 0 {
			t.Errorf("request %d: non-positive duration", i)
		}
	}
}

// stubDaemon is a scripted submit endpoint: the first rejections
// submissions get 429 with the given Retry-After header, then accepts.
type stubDaemon struct {
	mu         sync.Mutex
	attempts   int
	rejections int
	retryAfter string
}

func (s *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.attempts++
		n := s.attempts
		s.mu.Unlock()
		if n <= s.rejections {
			if s.retryAfter != "" {
				w.Header().Set("Retry-After", s.retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"serve: job queue full"}`)) //nolint:errcheck
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"job-000042"}`)) //nolint:errcheck
	})
	return mux
}

func (s *stubDaemon) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts
}

// TestSubmitRetriesOn429 pins the backoff satellite: with a RetryPolicy
// installed, Submit absorbs 429s, waits, and eventually returns the
// accepted id — the caller never sees the rejections.
func TestSubmitRetriesOn429(t *testing.T) {
	stub := &stubDaemon{rejections: 2, retryAfter: "1"}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := New(ts.URL, nil)
	var retries []time.Duration
	c.SetRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond, // cap beats the 1s Retry-After; tests stay fast
		Jitter:      -1,
		OnRetry:     func(_ int, d time.Duration) { retries = append(retries, d) },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	id, err := c.Submit(ctx, serve.JobSpec{Experiments: []string{"fig3"}})
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-000042" {
		t.Fatalf("id = %q", id)
	}
	if stub.count() != 3 {
		t.Fatalf("daemon saw %d attempts, want 3", stub.count())
	}
	if len(retries) != 2 {
		t.Fatalf("OnRetry fired %d times, want 2: %v", len(retries), retries)
	}
	for i, d := range retries {
		if d > 5*time.Millisecond {
			t.Errorf("retry %d waited %v, above the cap", i, d)
		}
	}
}

// TestSubmitRetryExhaustion: a persistently full queue surfaces the
// final 429 after exactly MaxAttempts tries.
func TestSubmitRetryExhaustion(t *testing.T) {
	stub := &stubDaemon{rejections: 1 << 30}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := New(ts.URL, nil)
	c.SetRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: -1})
	_, err := c.Submit(context.Background(), serve.JobSpec{Experiments: []string{"fig3"}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want a 429 StatusError", err)
	}
	if stub.count() != 3 {
		t.Fatalf("daemon saw %d attempts, want 3", stub.count())
	}
}

// TestSubmitDoesNotRetryOtherErrors: only 429 is retryable; a draining
// daemon's 503 (or a 400) surfaces immediately.
func TestSubmitDoesNotRetryOtherErrors(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts++
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"serve: draining, not accepting jobs"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, nil)
	c.SetRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: -1})
	_, err := c.Submit(context.Background(), serve.JobSpec{Experiments: []string{"fig3"}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want a 503 StatusError", err)
	}
	if attempts != 1 {
		t.Fatalf("daemon saw %d attempts, want 1", attempts)
	}
}

// TestSubmitRetryHonorsContext: cancellation interrupts the backoff
// wait instead of sleeping it out.
func TestSubmitRetryHonorsContext(t *testing.T) {
	stub := &stubDaemon{rejections: 1 << 30, retryAfter: "30"}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := New(ts.URL, nil)
	c.SetRetry(RetryPolicy{MaxAttempts: 5, MaxDelay: time.Minute, Jitter: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, serve.JobSpec{Experiments: []string{"fig3"}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Submit slept through the Retry-After instead of honoring the context")
	}
}

// TestRetryDelayCurve pins the backoff shape: exponential growth from
// BaseDelay, floored by Retry-After, capped at MaxDelay.
func TestRetryDelayCurve(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	cases := []struct {
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{1, 0, 100 * time.Millisecond},
		{2, 0, 200 * time.Millisecond},
		{3, 0, 400 * time.Millisecond},
		{5, 0, time.Second},                                 // curve capped
		{1, 300 * time.Millisecond, 300 * time.Millisecond}, // Retry-After floor
		{1, time.Minute, time.Second},                       // hint capped too
		{80, 0, time.Second},                                // shift overflow clamps to cap
	}
	for _, tc := range cases {
		if got := p.delay(tc.attempt, tc.retryAfter); got != tc.want {
			t.Errorf("delay(%d, %v) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
		}
	}
}

// TestPeekCellAndNodeInfo exercises the cluster peering endpoints
// against a real daemon: a computed cell is peekable by canonical key,
// an unknown key is a clean not-found, and /v1/node reports identity
// and capacity.
func TestPeekCellAndNodeInfo(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2, NodeID: "w1"})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort teardown
	})

	c := New(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Run(ctx, serve.JobSpec{Cells: []serve.CellSpec{{Workload: "stride", TLB: 64}}, Scale: "small"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || len(st.Result.Cells) != 1 {
		t.Fatalf("job %s: %+v", st.State, st.Result)
	}
	key := st.Result.Cells[0].Key

	look, ok, err := c.PeekCell(ctx, key)
	if err != nil || !ok {
		t.Fatalf("PeekCell(computed key): ok=%v err=%v", ok, err)
	}
	if look.Result != st.Result.Cells[0].Result {
		t.Error("peeked result differs from the job's")
	}
	if _, ok, err := c.PeekCell(ctx, "no-such-cell"); err != nil || ok {
		t.Fatalf("PeekCell(bogus): ok=%v err=%v, want a clean miss", ok, err)
	}

	ni, err := c.NodeInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ni.NodeID != "w1" || ni.Workers != 2 || ni.Draining {
		t.Fatalf("NodeInfo = %+v", ni)
	}
	if ni.CacheEntries < 1 {
		t.Fatalf("NodeInfo.CacheEntries = %d after a computed cell", ni.CacheEntries)
	}
}
