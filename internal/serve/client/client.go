// Package client is the Go client for the mtlbd daemon's job API. It
// is what mtlbexp -server and mtlbload use, so the wire protocol has
// exactly one implementation on each side.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"shadowtlb/internal/obs"
	"shadowtlb/internal/serve"
)

// Client talks to one mtlbd daemon.
type Client struct {
	base   string
	http   *http.Client
	tracer *obs.Tracer // nil = tracing off
	// root, when valid, is the parent for submit spans and the context
	// propagated to the daemon as a traceparent header.
	root obs.SpanContext
	// onRequest, when set, observes every completed API request.
	onRequest func(RequestInfo)
	// retry, when MaxAttempts > 1, makes Submit back off and retry on
	// 429 instead of surfacing the rejection to the caller.
	retry RetryPolicy
}

// New returns a client for the daemon at base (e.g.
// "http://localhost:8047"). A nil httpClient uses a default with no
// overall timeout — job waits are bounded by contexts, and event
// streams are long-lived by design.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// SetTracer attaches a tracer: each Submit gets a client-side span and
// every submission carries a traceparent header, so the daemon's spans
// land in the same trace. parent, when valid, roots the client's spans
// (a CLI mints one root span for its whole invocation); a zero parent
// puts each submission in its own fresh trace.
func (c *Client) SetTracer(t *obs.Tracer, parent obs.SpanContext) {
	c.tracer = t
	c.root = parent
}

// SetTraceParent sets the trace context propagated on submissions from
// a W3C traceparent string, without attaching a client-side tracer —
// for callers that only relay an upstream trace. Malformed input clears
// the context.
func (c *Client) SetTraceParent(h string) {
	c.root, _ = obs.ParseTraceParent(h)
}

// RequestInfo describes one completed daemon API request, for latency
// accounting by load generators.
type RequestInfo struct {
	Method string
	Path   string // route shape, ids elided (e.g. "/v1/jobs/{id}")
	Status int    // HTTP status, 0 on transport error
	Dur    time.Duration
}

// OnRequest installs an observer invoked after every API request
// (streams excluded — they are long-lived by design). mtlbload uses it
// to build request-latency percentiles.
func (c *Client) OnRequest(fn func(RequestInfo)) { c.onRequest = fn }

// StatusError is a non-2xx daemon response.
type StatusError struct {
	Code int
	// RetryAfter echoes the Retry-After header on 429 responses,
	// 0 otherwise.
	RetryAfter time.Duration
	Message    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("mtlbd: HTTP %d: %s", e.Code, e.Message)
}

// do issues a request and decodes a 2xx JSON body into out. route is
// the path's shape with ids elided, reported to the OnRequest observer;
// hdr, when non-nil, adds headers (the submit path's traceparent).
func (c *Client) do(ctx context.Context, method, path, route string, hdr http.Header, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	start := time.Now()
	resp, err := c.http.Do(req)
	if c.onRequest != nil {
		info := RequestInfo{Method: method, Path: route, Dur: time.Since(start)}
		if err == nil {
			info.Status = resp.StatusCode
		}
		c.onRequest(info)
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return statusError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// statusError builds a StatusError from a non-2xx response, preferring
// the JSON error document's message.
func statusError(resp *http.Response) error {
	e := &StatusError{Code: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &doc) == nil && doc.Error != "" {
		e.Message = doc.Error
	} else {
		e.Message = strings.TrimSpace(string(raw))
	}
	return e
}

// RetryPolicy makes Submit honor the daemon's admission backpressure:
// on 429 the client waits and retries instead of handing every rejected
// submission back to the caller. The wait is the larger of the daemon's
// Retry-After hint and a capped exponential backoff, with jitter so a
// fleet of rejected clients does not re-arrive in lockstep — exactly the
// behavior every caller of Submit used to reimplement, and what a
// cluster coordinator uses when dispatching cells to loaded workers.
type RetryPolicy struct {
	// MaxAttempts bounds total submission attempts (first try included);
	// <= 1 disables retrying.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0 = 100ms). Attempt n
	// waits max(Retry-After, BaseDelay·2ⁿ⁻¹), capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps every wait, Retry-After included (0 = 5s) — a daemon
	// must not be able to park a client arbitrarily long.
	MaxDelay time.Duration
	// Jitter widens each wait by a uniform random fraction in
	// [0, Jitter] (0 = 0.2; negative disables). Deterministic tests set
	// it negative.
	Jitter float64
	// OnRetry, when set, observes each backoff: the attempt that was
	// rejected (1-based) and the wait before the next one. Load
	// generators count retries with it.
	OnRetry func(attempt int, delay time.Duration)
}

// DefaultRetry is a sensible production policy: up to 8 attempts,
// 100ms base doubling to a 5s cap, 20% jitter.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 8}
}

// SetRetry installs the submission retry policy. The zero policy
// (MaxAttempts <= 1) restores the default: 429s surface immediately.
func (c *Client) SetRetry(p RetryPolicy) { c.retry = p }

// delay computes the wait after a rejected attempt (1-based), from the
// daemon's Retry-After hint and the policy's capped exponential curve.
func (p RetryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = 5 * time.Second
	}
	d := base << (attempt - 1)
	if d < base { // shift overflow on absurd attempt counts
		d = maxD
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > maxD {
		d = maxD
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		d += time.Duration(rand.Float64() * jitter * float64(d))
	}
	return d
}

// Submit enqueues a job and returns its id, retrying rejected (429)
// submissions per the installed RetryPolicy. With a tracer attached the
// submission is wrapped in a client-side span and carries its context
// as a traceparent header, so the daemon parents the job's spans under
// this call.
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (string, error) {
	id, err := c.submitOnce(ctx, spec)
	for attempt := 1; err != nil && attempt < c.retry.MaxAttempts; attempt++ {
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
			return "", err
		}
		d := c.retry.delay(attempt, se.RetryAfter)
		if c.retry.OnRetry != nil {
			c.retry.OnRetry(attempt, d)
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return "", ctx.Err()
		}
		id, err = c.submitOnce(ctx, spec)
	}
	return id, err
}

// submitOnce is one submission attempt.
func (c *Client) submitOnce(ctx context.Context, spec serve.JobSpec) (string, error) {
	span := c.tracer.StartSpan("submit", c.root)
	defer span.End()
	var hdr http.Header
	if sc := span.Context(); sc.Valid() {
		hdr = http.Header{"Traceparent": []string{sc.TraceParent()}}
	} else if c.root.Valid() {
		// Relay-only mode: no client tracer, but an upstream context to
		// propagate.
		hdr = http.Header{"Traceparent": []string{c.root.TraceParent()}}
	}
	var out struct {
		ID    string `json:"id"`
		Trace string `json:"trace"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", "/v1/jobs", hdr, spec, &out); err != nil {
		return "", err
	}
	span.SetAttr("job", out.ID)
	return out.ID, nil
}

// Status fetches a job's status document.
func (c *Client) Status(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, "/v1/jobs/{id}", nil, nil, &st)
	return st, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, "/v1/jobs/{id}", nil, nil, nil)
}

// Experiments lists the daemon's experiment registry.
func (c *Client) Experiments(ctx context.Context) ([]serve.ExperimentInfo, error) {
	var out []serve.ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/v1/experiments", "/v1/experiments", nil, nil, &out)
	return out, err
}

// PeekCell asks the daemon for a cached cell result by canonical key
// without triggering a simulation — the cluster cache-peering lookup.
// The bool reports whether the daemon had it; absence is not an error.
func (c *Client) PeekCell(ctx context.Context, key string) (serve.CellLookup, bool, error) {
	var out serve.CellLookup
	err := c.do(ctx, http.MethodGet, "/v1/cache?key="+url.QueryEscape(key), "/v1/cache", nil, nil, &out)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return serve.CellLookup{}, false, nil
		}
		return serve.CellLookup{}, false, err
	}
	return out, true, nil
}

// NodeInfo fetches the daemon's cluster identity and load document.
func (c *Client) NodeInfo(ctx context.Context) (serve.NodeInfo, error) {
	var out serve.NodeInfo
	err := c.do(ctx, http.MethodGet, "/v1/node", "/v1/node", nil, nil, &out)
	return out, err
}

// Healthz reports process liveness (200 even while draining).
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", "/healthz", nil, nil, nil)
}

// Readyz reports whether the daemon is accepting new jobs; a draining
// daemon is alive but not ready.
func (c *Client) Readyz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", "/readyz", nil, nil, nil)
}

// Metrics fetches the daemon's metrics dump as raw JSON.
func (c *Client) Metrics(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	err := c.do(ctx, http.MethodGet, "/metrics", "/metrics", nil, nil, &out)
	return out, err
}

// Wait follows the job's event stream until it reaches a terminal
// state, invoking onEvent (when non-nil) for each event, then returns
// the final status. It degrades to polling if the stream breaks.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(serve.Event)) (serve.JobStatus, error) {
	span := c.tracer.StartSpan("wait", c.root)
	span.SetAttr("job", id)
	defer span.End()
	if err := c.stream(ctx, id, onEvent); err != nil {
		if ctx.Err() != nil {
			return serve.JobStatus{}, ctx.Err()
		}
		if err := c.poll(ctx, id); err != nil {
			return serve.JobStatus{}, err
		}
	}
	return c.Status(ctx, id)
}

// stream consumes GET /v1/jobs/{id}/events to EOF. The server closes
// the stream once the job is terminal, so plain EOF means done.
func (c *Client) stream(ctx context.Context, id string, onEvent func(serve.Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("decoding event stream: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
	}
	return sc.Err()
}

// poll falls back to status polling until the job is terminal.
func (c *Client) poll(ctx context.Context, id string) error {
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return err
		}
		if st.State.Terminal() {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Run submits a job and waits for its terminal status in one call.
func (c *Client) Run(ctx context.Context, spec serve.JobSpec, onEvent func(serve.Event)) (serve.JobStatus, error) {
	id, err := c.Submit(ctx, spec)
	if err != nil {
		return serve.JobStatus{}, err
	}
	return c.Wait(ctx, id, onEvent)
}
