package serve

import (
	"container/list"
	"context"
	"sync"
	"time"

	"shadowtlb/internal/obs"
	"shadowtlb/internal/resultstore"
	"shadowtlb/internal/sim"
)

// ResultCache is the daemon's process-lifetime simulation cache: an LRU
// over canonical cell keys with single-flight execution, so repeated
// configurations are served without re-simulating and concurrent
// requests for one configuration — even from different jobs — share a
// single simulation. It implements runner.ExternalCache.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // MRU at the front; values are *cacheEntry
	items   map[string]*list.Element // key → list element
	flights map[string]*cacheFlight  // key → in-flight simulation
	store   *resultstore.Store       // persistent second tier; nil = memory only

	hits      uint64 // served without simulating (stored, disk or coalesced)
	misses    uint64 // led a simulation
	coalesced uint64 // hits served by waiting on another caller's flight
	disk      uint64 // hits served by the persistent store
}

// cacheEntry is one stored result.
type cacheEntry struct {
	key string
	res sim.Result
}

// cacheFlight is one in-flight simulation that waiters coalesce onto.
type cacheFlight struct {
	done chan struct{}
	res  sim.Result
	ok   bool // false when the leader failed (panicked); waiters retry
}

// NewResultCache returns an empty cache holding at most capacity
// results; capacity <= 0 selects a default of 4096.
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &ResultCache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*cacheFlight),
	}
}

// Do returns the cached result for key, waits on an in-flight
// simulation of the same key, or runs simulate as the flight leader and
// stores its result. The bool reports whether the result was served
// without running simulate here. Waiting honors ctx; the simulation
// itself, once started, always completes (on behalf of every waiter).
//
// When ctx carries an active span (the daemon's run span), the outcome
// is annotated onto it: a cache.hit, cache.disk or cache.miss event,
// or a retroactive cache.wait span covering a coalesced wait — so a
// job trace shows exactly which cells were free, which were read back
// from the persistent store, and which paid.
func (c *ResultCache) Do(ctx context.Context, key string, simulate func() sim.Result) (sim.Result, bool, error) {
	sp := obs.SpanFromContext(ctx)
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			sp.Event("cache.hit")
			return res, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			waitStart := time.Now()
			select {
			case <-f.done:
			case <-ctx.Done():
				return sim.Result{}, false, ctx.Err()
			}
			if f.ok {
				c.mu.Lock()
				c.hits++
				c.coalesced++
				c.mu.Unlock()
				if sp != nil {
					sp.Tracer().RecordSpan("cache.wait", sp.Context(),
						waitStart, time.Since(waitStart))
				}
				return f.res, true, nil
			}
			continue // the leader failed; retry, possibly as the new leader
		}
		f := &cacheFlight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()
		// Memory missed and no flight is up: consult the persistent
		// store before paying for a simulation. The flight entry above
		// makes this lookup single-flight too — concurrent requesters
		// wait on done rather than each hitting the disk.
		if c.store != nil {
			if res, ok := c.store.Get(key); ok {
				f.res, f.ok = res, true
				c.mu.Lock()
				delete(c.flights, key)
				c.insert(key, res)
				c.hits++
				c.disk++
				c.mu.Unlock()
				close(f.done)
				sp.Event("cache.disk")
				return res, true, nil
			}
		}
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		sp.Event("cache.miss")
		return c.lead(key, f, simulate)
	}
}

// lead runs the simulation as the flight leader and publishes the
// result. The deferred cleanup runs even when simulate panics, so
// waiters never hang: they observe the failed flight and retry, and the
// panic propagates to this caller alone.
func (c *ResultCache) lead(key string, f *cacheFlight, simulate func() sim.Result) (res sim.Result, cached bool, err error) {
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if f.ok {
			c.insert(key, f.res)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.res = simulate()
	f.ok = true
	if c.store != nil {
		// Best-effort persistence: a failed write only costs a future
		// re-simulation.
		_ = c.store.Put(key, f.res)
	}
	return f.res, false, nil
}

// Peek returns the stored result for key without ever simulating: a
// memory hit refreshes recency, a memory miss consults the persistent
// tier (promoting a disk hit into memory), and absence is reported
// without counting a miss — nothing was led to simulate. It is the
// cluster peering primitive: the worker-side GET /v1/cache endpoint and
// the coordinator's local-tier check are both Peek, so a cell computed
// anywhere becomes a cluster-wide hit.
func (c *ResultCache) Peek(key string) (sim.Result, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	store := c.store
	c.mu.Unlock()
	if store != nil {
		if res, ok := store.Get(key); ok {
			c.mu.Lock()
			c.insert(key, res)
			c.hits++
			c.disk++
			c.mu.Unlock()
			return res, true
		}
	}
	return sim.Result{}, false
}

// Add stores a result computed elsewhere — a cell dispatched to a
// cluster worker, or read from a peer's cache — at the MRU position,
// writing through to the persistent tier when one is attached. Unlike
// Do it never simulates and counts neither hit nor miss.
func (c *ResultCache) Add(key string, res sim.Result) {
	c.mu.Lock()
	c.insert(key, res)
	store := c.store
	c.mu.Unlock()
	if store != nil {
		// Best-effort persistence, as in lead.
		_ = store.Put(key, res)
	}
}

// SetStore attaches a persistent second tier: memory misses consult it
// before simulating, and every simulated result is written through to
// it. Call before serving traffic.
func (c *ResultCache) SetStore(st *resultstore.Store) {
	c.mu.Lock()
	c.store = st
	c.mu.Unlock()
}

// Store returns the attached persistent tier, nil when memory-only.
func (c *ResultCache) Store() *resultstore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// insert stores a result at the MRU position, evicting from the LRU end
// past capacity. Callers hold c.mu.
func (c *ResultCache) insert(key string, res sim.Result) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// EvictOldest drops the least-recently-used stored result, reporting
// whether anything was evicted. The fault-injection harness uses it to
// force refills under load; in-flight simulations are unaffected.
func (c *ResultCache) EvictOldest() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	last := c.ll.Back()
	if last == nil {
		return false
	}
	c.ll.Remove(last)
	delete(c.items, last.Value.(*cacheEntry).key)
	return true
}

// Len returns the number of stored results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the hit and miss counts so far. A hit is any Do served
// without simulating here (a stored result or a coalesced wait); a miss
// led a simulation.
func (c *ResultCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Counters splits the lookup outcomes four ways for labeled
// exposition: stored (in-memory) hits, waits coalesced onto another
// caller's in-flight simulation, hits served from the persistent disk
// store, and misses that led a simulation.
// stored + coalesced + disk equals Stats' hits.
func (c *ResultCache) Counters() (stored, coalesced, disk, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits - c.coalesced - c.disk, c.coalesced, c.disk, c.misses
}
