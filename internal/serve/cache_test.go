package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"shadowtlb/internal/resultstore"
	"shadowtlb/internal/sim"
)

// res builds a distinguishable result.
func res(n uint64) sim.Result { return sim.Result{Instructions: n} }

func TestCacheStoresAndHits(t *testing.T) {
	c := NewResultCache(8)
	sims := 0
	get := func(key string) (sim.Result, bool) {
		r, cached, err := c.Do(context.Background(), key, func() sim.Result {
			sims++
			return res(42)
		})
		if err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
		return r, cached
	}

	if r, cached := get("a"); cached || r != res(42) {
		t.Fatalf("first Do: cached=%v r=%+v", cached, r)
	}
	if _, cached := get("a"); !cached {
		t.Fatal("second Do for same key missed")
	}
	if sims != 1 {
		t.Fatalf("simulated %d times", sims)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewResultCache(2)
	do := func(key string, v uint64) {
		c.Do(context.Background(), key, func() sim.Result { return res(v) }) //nolint:errcheck
	}
	do("a", 1)
	do("b", 2)
	do("a", 1) // touch a: b is now LRU
	do("c", 3) // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	sims := 0
	c.Do(context.Background(), "a", func() sim.Result { sims++; return res(1) }) //nolint:errcheck
	c.Do(context.Background(), "b", func() sim.Result { sims++; return res(2) }) //nolint:errcheck
	if sims != 1 {
		t.Errorf("retained a should hit and evicted b should re-simulate; sims = %d", sims)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewResultCache(8)
	var (
		entered = make(chan struct{})
		release = make(chan struct{})
		sims    int32
		mu      sync.Mutex
	)
	leaderDone := make(chan sim.Result, 1)
	go func() {
		r, _, _ := c.Do(context.Background(), "k", func() sim.Result {
			close(entered)
			<-release
			mu.Lock()
			sims++
			mu.Unlock()
			return res(7)
		})
		leaderDone <- r
	}()
	<-entered

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]sim.Result, waiters)
	cached := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], cached[i], _ = c.Do(context.Background(), "k", func() sim.Result {
				mu.Lock()
				sims++
				mu.Unlock()
				return res(7)
			})
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let waiters reach the flight
	close(release)
	wg.Wait()
	<-leaderDone

	mu.Lock()
	defer mu.Unlock()
	if sims != 1 {
		t.Fatalf("%d simulations for one key under concurrency", sims)
	}
	for i := 0; i < waiters; i++ {
		if results[i] != res(7) || !cached[i] {
			t.Errorf("waiter %d: r=%+v cached=%v", i, results[i], cached[i])
		}
	}
	hits, misses := c.Stats()
	if hits != waiters || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewResultCache(8)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() sim.Result { //nolint:errcheck
			close(entered)
			<-release
			return res(1)
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() sim.Result { return res(1) })
	if err != context.Canceled {
		t.Fatalf("canceled waiter: err = %v", err)
	}
	close(release)
}

func TestCacheLeaderPanicReleasesWaiters(t *testing.T) {
	c := NewResultCache(8)
	entered := make(chan struct{})
	boom := make(chan struct{})
	go func() {
		defer func() { recover() }()                        //nolint:errcheck // the panic under test
		c.Do(context.Background(), "k", func() sim.Result { //nolint:errcheck
			close(entered)
			<-boom
			panic("simulated failure")
		})
	}()
	<-entered

	got := make(chan sim.Result, 1)
	go func() {
		r, _, _ := c.Do(context.Background(), "k", func() sim.Result { return res(9) })
		got <- r
	}()
	time.Sleep(10 * time.Millisecond)
	close(boom)

	select {
	case r := <-got:
		if r != res(9) {
			t.Fatalf("waiter after leader panic: %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung after leader panic")
	}
	// The failed flight stored nothing.
	r, cached, err := c.Do(context.Background(), "k", func() sim.Result { return res(9) })
	if err != nil || !cached || r != res(9) {
		t.Errorf("retry after panic: r=%+v cached=%v err=%v", r, cached, err)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := NewResultCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%8)
				want := res(uint64((g + i) % 8))
				r, _, err := c.Do(context.Background(), key, func() sim.Result { return want })
				if err != nil || r != want {
					t.Errorf("Do(%s) = %+v, %v", key, r, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 8 {
		t.Errorf("Len = %d, want 8", c.Len())
	}
}

// TestCacheDiskTier exercises the persistent second tier across a
// simulated daemon restart: results written through the store are
// served from disk by a fresh cache without re-simulating, counted
// under the disk outcome, and promoted into memory.
func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewResultCache(8)
	c1.SetStore(st)
	sims := 0
	simulate := func() sim.Result { sims++; return res(7) }
	if _, cached, _ := c1.Do(context.Background(), "a", simulate); cached {
		t.Fatal("first Do served without simulating")
	}
	// Same process, same cache: memory hit, not disk.
	if _, cached, _ := c1.Do(context.Background(), "a", simulate); !cached {
		t.Fatal("memory hit missed")
	}
	if _, _, disk, _ := c1.Counters(); disk != 0 {
		t.Fatalf("disk outcomes before restart = %d", disk)
	}

	// "Restart": fresh in-memory cache over the same store directory.
	st2, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewResultCache(8)
	c2.SetStore(st2)
	r, cached, err := c2.Do(context.Background(), "a", simulate)
	if err != nil || !cached || r != res(7) {
		t.Fatalf("post-restart Do = %+v %v %v", r, cached, err)
	}
	if sims != 1 {
		t.Fatalf("restart re-simulated (%d sims)", sims)
	}
	stored, coalesced, disk, misses := c2.Counters()
	if disk != 1 || misses != 0 {
		t.Fatalf("counters = %d/%d/%d/%d, want disk=1 miss=0", stored, coalesced, disk, misses)
	}
	// The disk hit was promoted: the next lookup is a memory hit.
	if _, cached, _ := c2.Do(context.Background(), "a", simulate); !cached {
		t.Fatal("promoted entry missed in memory")
	}
	if stored, _, _, _ := c2.Counters(); stored != 1 {
		t.Fatalf("stored outcomes after promotion = %d", stored)
	}
}

// TestCacheWithoutStoreUnchanged pins the memory-only default: no
// store attached, no disk outcomes, behavior as before.
func TestCacheWithoutStoreUnchanged(t *testing.T) {
	c := NewResultCache(8)
	c.Do(context.Background(), "a", func() sim.Result { return res(1) }) //nolint:errcheck
	c.Do(context.Background(), "a", func() sim.Result { return res(1) }) //nolint:errcheck
	stored, coalesced, disk, misses := c.Counters()
	if disk != 0 || stored != 1 || coalesced != 0 || misses != 1 {
		t.Fatalf("counters = %d/%d/%d/%d", stored, coalesced, disk, misses)
	}
	if c.Store() != nil {
		t.Fatal("store attached by default")
	}
}
