package sim_test

import (
	"testing"

	"shadowtlb/internal/core"
	"shadowtlb/internal/obs"
	"shadowtlb/internal/sim"
	"shadowtlb/internal/workload/radix"
)

// observedConfig is a small MTLB machine that exercises every
// instrumented path: TLB misses, MTLB fills, remaps, cache fills.
func observedConfig() sim.Config {
	return sim.Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig())
}

// TestObservationDoesNotPerturb pins the core contract: attaching a full
// observability session must not change the simulation's result.
func TestObservationDoesNotPerturb(t *testing.T) {
	cfg := observedConfig()
	plain := sim.RunOn(cfg, radix.New(radix.SmallConfig()))

	o := obs.New(obs.Options{SampleEvery: 100_000, Timeline: true})
	observed := sim.RunObserved(cfg, radix.New(radix.SmallConfig()), o)

	if plain != observed {
		t.Fatalf("observed result differs from plain:\nplain    %+v\nobserved %+v", plain, observed)
	}
}

// TestObservedRunProducesSeries checks the sampler crossed at least two
// boundaries at the default interval (kernel boot alone guarantees it)
// and that counters in the registry agree with the result.
func TestObservedRunProducesSeries(t *testing.T) {
	o := obs.New(obs.Options{SampleEvery: 1_000_000})
	res := sim.RunObserved(observedConfig(), radix.New(radix.SmallConfig()), o)

	if rows := o.Sampler().Rows(); rows < 2 {
		t.Fatalf("sampler rows = %d, want >= 2 (run is %d cycles)", rows, res.TotalCycles())
	}

	dump := o.Registry().Dump()
	byName := map[string]obs.DumpMetric{}
	for _, m := range dump {
		byName[m.Name] = m
	}
	if got := byName["tlb.misses"].Value; uint64(got) != res.TLBMisses {
		t.Errorf("tlb.misses metric = %v, result says %d", got, res.TLBMisses)
	}
	if got := byName["cycles.user"].Value; got != float64(res.Breakdown.User) {
		t.Errorf("cycles.user metric = %v, result says %d", got, res.Breakdown.User)
	}
	if got := byName["mmc.fills"].Value; uint64(got) != res.Fills {
		t.Errorf("mmc.fills metric = %v, result says %d", got, res.Fills)
	}
	if byName["mmc.fill_cycles"].Count == 0 {
		t.Error("mmc.fill_cycles histogram recorded nothing")
	}
}

// TestObservedRunTimeline checks the machine emits the paper-relevant
// spans and that each track is monotonic and non-overlapping in the
// simulated-cycle domain.
func TestObservedRunTimeline(t *testing.T) {
	o := obs.New(obs.Options{Timeline: true})
	res := sim.RunObserved(observedConfig(), radix.New(radix.SmallConfig()), o)

	evs := o.Timeline().Events()
	if len(evs) == 0 {
		t.Fatal("no timeline events recorded")
	}
	tracks := map[string]int{}
	lastEnd := map[string]uint64{}
	lastBegin := map[string]uint64{}
	total := uint64(res.TotalCycles())
	for _, e := range evs {
		tracks[e.Track]++
		if e.Begin > total {
			t.Fatalf("event %s/%s begins at %d, past end of run %d", e.Track, e.Name, e.Begin, total)
		}
		if e.Instant {
			continue
		}
		if e.Begin < lastBegin[e.Track] {
			t.Fatalf("track %s: begin %d after begin %d — not monotonic", e.Track, e.Begin, lastBegin[e.Track])
		}
		if e.Begin < lastEnd[e.Track] {
			t.Fatalf("track %s: span at %d overlaps previous span ending %d", e.Track, e.Begin, lastEnd[e.Track])
		}
		lastBegin[e.Track] = e.Begin
		if end := e.Begin + e.Dur; end > lastEnd[e.Track] {
			lastEnd[e.Track] = end
		}
	}
	for _, want := range []string{"tlbmiss", "remap", "mtlb"} {
		if tracks[want] == 0 {
			t.Errorf("no events on track %q (got %v)", want, tracks)
		}
	}
}
