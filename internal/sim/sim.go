// Package sim assembles the complete simulated machine — CPU, TLBs,
// cache, bus, memory controller with optional MTLB, DRAM, and the OS —
// and runs workloads on it, producing the measurements the paper's
// evaluation reports (§3.2).
//
// The simulated system models the paper's environment: a single-issue
// 240 MHz processor with a fully associative unified TLB and a perfect
// instruction cache; a 512 KB direct-mapped VIPT write-back data cache
// with 32-byte lines; a 120 MHz Runway-class bus; an HP-J-class memory
// controller, optionally fitted with an MTLB over a 512 MB shadow
// space; and a BSD-like microkernel whose boot, process lifecycle,
// timer, TLB miss handling and paging costs are all included in
// reported runtimes.
package sim

import (
	"fmt"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/bus"
	"shadowtlb/internal/cache"
	"shadowtlb/internal/core"
	"shadowtlb/internal/cpu"
	"shadowtlb/internal/kernel"
	"shadowtlb/internal/mem"
	"shadowtlb/internal/mmc"
	"shadowtlb/internal/obs"
	"shadowtlb/internal/ptable"
	"shadowtlb/internal/stats"
	"shadowtlb/internal/tlb"
	"shadowtlb/internal/vm"
	"shadowtlb/internal/workload"
)

// Physical memory map of the simulated machine. The kernel reserves low
// memory for its own structures; user frames are allocated above.
const (
	// ShadowTableBase is where the MMC's flat shadow-to-physical table
	// lives (512 KB for the default 512 MB shadow space).
	ShadowTableBase arch.PAddr = 0x00100000
	// HPTBase is where the hashed page table lives (256 KB).
	HPTBase arch.PAddr = 0x00200000
	// UserFrameBase is the first frame available to the allocator.
	UserFrameBase uint64 = 8 * arch.MB
)

// Config describes one machine configuration — a point in the paper's
// evaluation space.
type Config struct {
	// Label names the configuration in reports.
	Label string

	// DRAMBytes is installed memory; must end below the shadow space.
	DRAMBytes uint64
	// AllocOrder controls physical frame fragmentation (Scatter models
	// a long-running system; the paper's mechanism exists because free
	// memory is discontiguous).
	AllocOrder mem.AllocOrder
	// MaxUserFrames caps the frames available to the OS (0 = all of
	// DRAM beyond the kernel reserve). Small values create memory
	// pressure that exercises the page-out daemon.
	MaxUserFrames uint64

	// CPUTLBEntries sizes the processor TLB (paper: 64, 96, 128, 256).
	CPUTLBEntries int
	// TextPages and IFetchPeriod shape instruction-side TLB pressure.
	TextPages    int
	IFetchPeriod int
	// NoFastPath disables the CPU's fast-path access engine, forcing
	// every reference through the full TLB/cache/bus walk. Results are
	// identical either way (the differential tests prove it); the flag
	// exists so they can be compared and regressions bisected.
	NoFastPath bool

	// MTLB enables the memory-controller translation engine when
	// non-nil.
	MTLB *core.MTLBConfig
	// Scheme selects the translation backend fitted behind the MMC
	// when MTLB is non-nil: "" or "mtlb" is the paper's set-associative
	// MTLB; core.SchemeNames() lists the alternatives ("coalesced",
	// "spill"). Ignored on conventional (no-MTLB) systems.
	Scheme string
	// ShadowSpace is the shadow region (default: 512 MB at 0x80000000).
	ShadowSpace core.ShadowSpace
	// Partition is the bucket partition (default: the paper's Figure 2).
	Partition []core.BucketSpec
	// UseBuddy switches the shadow allocator to the buddy system
	// (the paper's future-work variant; ablation).
	UseBuddy bool
	// NoCheckCycle hides the per-operation MMC shadow check (ablation).
	NoCheckCycle bool
	// StreamBuffers enables the MMC prefetch extension (§6 future
	// work) with the given number of stream buffers.
	StreamBuffers int
	// DRAMBanks enables banked open-row DRAM timing (0 = flat latency).
	DRAMBanks int

	// Cache, Bus, MMCTiming and Costs parameterize the substrate.
	Cache     cache.Config
	Bus       bus.Config
	MMCTiming mmc.Timing
	Costs     kernel.Costs
	// HPTEntries sizes the hashed page table (default 16K, §3.2).
	HPTEntries int

	// SMP, when non-nil, selects the multicore machine (see smp.go): N
	// processors with private TLBs, micro-ITLBs and fast-path memos
	// over one shared bus, cache, MMC/MTLB, DRAM and shadow space. Nil
	// — the default — is the paper's uniprocessor; every existing cell
	// key and golden is untouched.
	SMP *SMPParams
}

// SMPParams parameterizes the multicore machine.
type SMPParams struct {
	// CPUs is the processor count (1 runs the multicore executor on a
	// single CPU — useful as the speedup baseline).
	CPUs int
	// Quantum is the lockstep quantum in references per CPU per round
	// (0 = DefaultSMPQuantum). Timing-visible: shorter quanta commit
	// smaller slices per arbitration turn.
	Quantum int
	// ArbSeed perturbs the per-round rotation of the arbitration order
	// (0 = plain round-robin rotation). Results for different seeds
	// legitimately differ in timing; the schedule fuzzer proves the
	// functional counters never move.
	ArbSeed uint64
}

// DefaultSMPQuantum is the lockstep quantum when SMPParams.Quantum is 0.
const DefaultSMPQuantum = 256

// WithSMP returns the config with an n-CPU multicore machine selected.
func (c Config) WithSMP(n int) Config {
	c.SMP = &SMPParams{CPUs: n}
	c.Label += fmt.Sprintf("+smp%d", n)
	return c
}

// Default returns the paper's base system: 96-entry CPU TLB, no MTLB.
func Default() Config {
	return Config{
		Label:         "base-96",
		DRAMBytes:     256 * arch.MB,
		AllocOrder:    mem.Scatter,
		CPUTLBEntries: 96,
		TextPages:     12,
		IFetchPeriod:  120,
		ShadowSpace:   core.DefaultShadowSpace(),
		Cache:         cache.DefaultConfig(),
		Bus:           bus.DefaultConfig(),
		MMCTiming:     mmc.DefaultTiming(),
		Costs:         kernel.DefaultCosts(),
		HPTEntries:    ptable.DefaultEntries,
	}
}

// WithTLB returns the config with a different CPU TLB size.
func (c Config) WithTLB(entries int) Config {
	c.CPUTLBEntries = entries
	c.Label = fmt.Sprintf("tlb%d", entries)
	if c.MTLB != nil {
		c.Label += fmt.Sprintf("+mtlb%d/%dw", c.MTLB.Entries, c.MTLB.Ways)
		c.Label += schemeSuffix(c.Scheme)
	}
	return c
}

// WithMTLB returns the config with an MTLB fitted. The geometry is
// normalized first so the label names what will actually be built.
func (c Config) WithMTLB(m core.MTLBConfig) Config {
	m.Normalize()
	c.MTLB = &m
	c.Label = fmt.Sprintf("tlb%d+mtlb%d/%dw", c.CPUTLBEntries, m.Entries, m.Ways)
	c.Label += schemeSuffix(c.Scheme)
	return c
}

// WithScheme returns the config with a translation scheme selected.
// Non-default schemes are appended to the label; the default scheme
// leaves labels (and therefore rendered tables) untouched.
func (c Config) WithScheme(scheme string) Config {
	c.Scheme = scheme
	if c.MTLB != nil {
		c.Label = fmt.Sprintf("tlb%d+mtlb%d/%dw", c.CPUTLBEntries, c.MTLB.Entries, c.MTLB.Ways)
		c.Label += schemeSuffix(scheme)
	}
	return c
}

// schemeSuffix names a non-default scheme in labels; the default scheme
// contributes nothing, keeping pre-interface labels (and every rendered
// table built from them) byte-identical.
func schemeSuffix(scheme string) string {
	if s := core.NormalizeScheme(scheme); s != core.DefaultScheme {
		return "+" + s
	}
	return ""
}

// System is an assembled machine.
type System struct {
	Cfg    Config
	Dram   *mem.DRAM
	Frames *mem.FrameAlloc
	Bus    *bus.Bus
	Cache  *cache.Cache
	CPUTLB *tlb.TLB
	ITLB   *tlb.MicroITLB
	HPT    *ptable.Table
	// Translator is the MMC's translation backend (nil on conventional
	// systems): the scheme the config selected, seen through the
	// interface every consumer — MMC fill path, invariant audits, fast
	// path memo validation — works against.
	Translator core.Translator
	MMC        *mmc.MMC
	Kernel     *kernel.Kernel
	VM         *vm.VM
	CPU        *cpu.CPU

	// OnRunEnd, when set, fires at the end of Run after the workload and
	// process exit complete, before the result is returned — the
	// invariant harness's final whole-machine audit point.
	OnRunEnd func()

	obs *obs.Obs // attached session, nil when unobserved
}

// OnNewSystem, when set, is invoked with every system New assembles,
// immediately after wiring completes. The invariant harness installs
// itself here so a single -check flag covers every entry path — direct
// sims, runner pools, and serve jobs — without touching Config (cell
// cache keys must not change). Runner pools assemble systems from
// multiple goroutines, so the hook must be safe for concurrent calls;
// set it before any simulation starts.
var OnNewSystem func(*System)

// Observe attaches an observability session to an assembled machine:
// the timeline's clock becomes the CPU cycle count and every layer —
// processor TLB, data cache, MTLB, MMC, kernel, VM, CPU — registers its
// metrics and takes its instrument pointers. Call before Run; a nil o
// leaves the system unobserved. Observing does not perturb simulated
// timing: every metric reads state the machine already maintains.
func (s *System) Observe(o *obs.Obs) {
	if o == nil {
		return
	}
	s.obs = o
	if tl := o.Timeline(); tl != nil {
		tl.Now = func() uint64 { return uint64(s.CPU.Cycles()) }
	}
	r := o.Registry()
	s.CPUTLB.RegisterMetrics(r, "tlb")
	s.Cache.RegisterMetrics(r)
	s.Kernel.RegisterMetrics(r)
	if s.Translator != nil {
		s.Translator.RegisterMetrics(r)
	}
	s.MMC.Observe(o)
	s.VM.Observe(o)
	s.CPU.Observe(o)
}

// New assembles a machine from the configuration.
func New(cfg Config) *System {
	if cfg.DRAMBytes == 0 {
		panic("sim: zero DRAM")
	}
	if uint64(cfg.ShadowSpace.Base) < cfg.DRAMBytes {
		panic(fmt.Sprintf("sim: shadow space at %v overlaps %d MB of DRAM",
			cfg.ShadowSpace.Base, cfg.DRAMBytes/arch.MB))
	}
	s := &System{Cfg: cfg}
	s.Dram = mem.NewDRAM(cfg.DRAMBytes)
	userFrames := (cfg.DRAMBytes - UserFrameBase) / arch.PageSize
	if cfg.MaxUserFrames > 0 && cfg.MaxUserFrames < userFrames {
		userFrames = cfg.MaxUserFrames
	}
	s.Frames = mem.NewFrameAlloc(UserFrameBase/arch.PageSize, userFrames, cfg.AllocOrder)
	s.Bus = bus.New(cfg.Bus)
	s.Cache = cache.New(cfg.Cache)
	s.CPUTLB = tlb.New(tlb.FullyAssociative(cfg.CPUTLBEntries))
	s.ITLB = &tlb.MicroITLB{}
	s.HPT = ptable.New(HPTBase, cfg.HPTEntries)
	s.Kernel = kernel.New(cfg.Costs)

	var stable *core.ShadowTable
	var shadowAlloc core.ShadowAllocator
	if cfg.MTLB != nil {
		stable = core.NewShadowTable(cfg.ShadowSpace, ShadowTableBase, s.Dram)
		// Normalize here, at the single point every entry path funnels
		// through, so flag-derived geometries (e.g. -ways larger than
		// -mtlb) mean the same thing in every command.
		mcfg := *cfg.MTLB
		mcfg.Normalize()
		tr, err := core.NewTranslator(cfg.Scheme, mcfg, core.TranslatorDeps{
			Table: stable,
			Cache: s.Cache,
			Costs: cfg.MMCTiming.TranslatorCosts(),
		})
		if err != nil {
			panic("sim: " + err.Error())
		}
		s.Translator = tr
		if cfg.UseBuddy {
			shadowAlloc = core.NewBuddyAlloc(cfg.ShadowSpace)
		} else {
			part := cfg.Partition
			if part == nil {
				part = core.DefaultPartition()
			}
			shadowAlloc = core.NewBucketAlloc(cfg.ShadowSpace, part)
		}
	}
	s.MMC = mmc.New(mmc.Config{
		Timing:        cfg.MMCTiming,
		NoCheckCycle:  cfg.NoCheckCycle,
		StreamBuffers: cfg.StreamBuffers,
		DRAMBanks:     cfg.DRAMBanks,
	}, s.Bus, s.Translator)
	s.VM = vm.New(vm.Deps{
		Dram: s.Dram, Frames: s.Frames, HPT: s.HPT, MMC: s.MMC,
		Cache: s.Cache, CPUTLB: s.CPUTLB, ITLB: s.ITLB, Kernel: s.Kernel,
		ShadowAlloc: shadowAlloc, STable: stable,
	})
	s.CPU = cpu.New(cpu.Config{
		TLBEntries:   cfg.CPUTLBEntries,
		TextPages:    cfg.TextPages,
		IFetchPeriod: cfg.IFetchPeriod,
		NoFastPath:   cfg.NoFastPath,
	}, s.VM)
	// Explicit shootdown hook: OS translation changes drop the CPU's
	// fast-path memo directly, on top of the generation checks.
	s.VM.OnShootdown = s.CPU.FlushMemo
	if OnNewSystem != nil {
		OnNewSystem(s)
	}
	return s
}

// Result is the measurement set of one run — the quantities the paper's
// figures are built from.
type Result struct {
	Label     string
	Workload  string
	Breakdown stats.Breakdown

	Instructions uint64
	TLBMisses    uint64
	TLBHitRate   float64
	CacheHitRate float64
	PageFaults   uint64

	// MTLB-side measurements (zero without an MTLB). Scheme names the
	// translation backend that produced them ("" without one).
	HasMTLB         bool
	Scheme          string
	MTLBHitRate     float64
	MTLBFills       uint64
	SuperpagesMade  uint64
	PagesRemapped   uint64
	AvgFillMMC      float64 // Figure 4(B): MMC cycles per cache fill
	Fills           uint64
	StreamHits      uint64
	RowHitRate      float64 // banked DRAM timing only (zero when flat)
	CPUTLBReachPeak uint64

	// Multicore measurements (zero on uniprocessor runs). Breakdown
	// above is the sum over all CPUs; MachineCycles is the simulated
	// wall clock — the slowest processor's completion time including
	// barrier idling. All fields are scalars so Result stays comparable
	// with == (memoization, caches and the differential suites rely on
	// that).
	CPUs           int
	MachineCycles  uint64
	IPIs           uint64 // shootdown IPIs delivered to remote CPUs
	BusStallCycles uint64 // cycles lost to inter-CPU bus contention
	BarrierCycles  uint64 // cycles idle at parallel-workload barriers
	MaxCPUCycles   uint64 // busiest processor's charged (non-idle) cycles
	MinCPUCycles   uint64 // least-loaded processor's charged cycles
}

// TotalCycles returns the run's total simulated CPU cycles.
func (r Result) TotalCycles() stats.Cycles { return r.Breakdown.Total() }

// TLBFraction returns the fraction of runtime in TLB miss handling.
func (r Result) TLBFraction() float64 { return r.Breakdown.TLBFraction() }

// Run boots the system, executes the workload as a process, and collects
// the result. Runtimes include kernel initialization, process startup
// and exit, as in the paper ("complete simulation times from
// initialization of the BSD-based (micro)kernel ... through completion
// of process exit()", §3.2).
func (s *System) Run(w workload.Workload) Result {
	s.CPU.Charge(s.Kernel.Boot(), cpu.KernelTime)
	s.CPU.Charge(s.Kernel.StartProcess(), cpu.KernelTime)

	if w.SbrkSuperpages() && s.VM.HasShadow() {
		cfg := s.VM.SbrkConfigNow()
		cfg.Superpages = true
		s.VM.ConfigureSbrk(cfg)
	}

	w.Run(s.CPU)

	s.CPU.Charge(s.Kernel.ExitProcess(), cpu.KernelTime)

	if s.OnRunEnd != nil {
		s.OnRunEnd()
	}

	res := Result{
		Label:        s.Cfg.Label,
		Workload:     w.Name(),
		Breakdown:    s.CPU.Breakdown,
		Instructions: s.CPU.Instructions,
		TLBMisses:    s.VM.TLBMisses,
		TLBHitRate:   s.CPUTLB.Stats.Rate(),
		CacheHitRate: s.Cache.Stats.Rate(),
		PageFaults:   s.VM.PageFaults,
		Fills:        s.MMC.Fills,
		StreamHits:   s.MMC.StreamHits(),
		AvgFillMMC:   s.MMC.AvgFillMMCCycles(),
		RowHitRate:   s.MMC.RowHitRate(),
	}
	if s.Translator != nil {
		c := s.Translator.Counters()
		res.HasMTLB = true
		res.Scheme = s.Translator.Scheme()
		res.MTLBHitRate = c.HitRate()
		res.MTLBFills = c.Fills
		res.SuperpagesMade = s.VM.SuperpagesMade
		res.PagesRemapped = s.VM.PagesRemapped
	}
	res.CPUTLBReachPeak = s.CPUTLB.Reach()
	// Close out the time series at the run's final cycle so the last
	// partial interval is covered.
	s.obs.Sampler().Final(uint64(s.CPU.Cycles()))
	return res
}

// RunOn is a convenience: assemble a fresh system and run the workload.
func RunOn(cfg Config, w workload.Workload) Result {
	return New(cfg).Run(w)
}

// RunObserved assembles a fresh system, attaches the observability
// session, and runs the workload. A nil o degrades to RunOn exactly.
func RunObserved(cfg Config, w workload.Workload, o *obs.Obs) Result {
	s := New(cfg)
	s.Observe(o)
	return s.Run(w)
}
