package sim

import (
	"sync"
	"testing"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/workload"
)

// TestConcurrentRunOnIsolated is the contract the parallel experiment
// runner depends on: RunOn builds a fresh System per call, so concurrent
// runs share no mutable state (run under -race) and identical
// configurations yield identical results regardless of interleaving.
func TestConcurrentRunOnIsolated(t *testing.T) {
	mk := func() workload.Workload {
		return &workload.RandomAccess{
			Bytes: 1 * arch.MB, Accesses: 20_000, WriteFrac: 50, Remapped: true,
		}
	}
	cfgs := []Config{
		small().WithTLB(64),
		small().WithTLB(128),
		smallMTLB().WithTLB(64),
		smallMTLB().WithTLB(128),
	}
	const replicas = 4 // each config simulated 4× concurrently
	results := make([][]Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		results[i] = make([]Result, replicas)
		for j := 0; j < replicas; j++ {
			wg.Add(1)
			go func(i, j int, cfg Config) {
				defer wg.Done()
				results[i][j] = RunOn(cfg, mk())
			}(i, j, cfg)
		}
	}
	wg.Wait()
	for i := range cfgs {
		for j := 1; j < replicas; j++ {
			if results[i][j] != results[i][0] {
				t.Errorf("config %d replica %d diverged:\n%+v\n%+v",
					i, j, results[i][0], results[i][j])
			}
		}
	}
}
