package sim

import (
	"fmt"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/core"
	"shadowtlb/internal/cpu"
	"shadowtlb/internal/kernel"
	"shadowtlb/internal/mem"
	"shadowtlb/internal/mmc"
	"shadowtlb/internal/ptable"
	"shadowtlb/internal/stats"
	"shadowtlb/internal/vm"
	"shadowtlb/internal/workload"
)

// Multiprogramming. The paper motivates the MTLB with commercial
// workloads, which are inherently multiprogrammed; this file adds a
// round-robin scheduler so several processes share the machine.
//
// The processor TLB has no address-space identifiers (like the paper's
// PA-RISC model with a flushed unified TLB), so every context switch
// flushes it and the micro-ITLB: the incoming process must re-fault its
// working set into the TLB. This is where superpages shine twice over —
// a process whose working set is mapped by a handful of superpage
// entries refills its TLB in a few misses instead of hundreds, and the
// MTLB itself is indexed by *physical* (shadow) addresses, so its
// contents remain valid across switches.
//
// Scheduling is deterministic: each process runs in a goroutine that is
// resumed and suspended through unbuffered channels, with exactly one
// runnable goroutine at any time.

// Proc is one scheduled process.
type Proc struct {
	Workload workload.Workload
	VM       *vm.VM

	// Cycles is the machine time charged while this process was
	// scheduled (including its kernel work).
	Cycles stats.Cycles
	// TLBMissCycles is the portion spent in TLB miss handling.
	TLBMissCycles stats.Cycles
	// Switches counts times the process was scheduled in.
	Switches uint64

	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// MultiSystem is a machine shared by several processes: one set of
// hardware (cache, TLB, bus, MMC/MTLB, DRAM, frame pool, shadow space)
// and per-process address spaces (VM + hashed page table).
type MultiSystem struct {
	Cfg     Config
	Quantum stats.Cycles

	Dram   *mem.DRAM
	Frames *mem.FrameAlloc
	CPU    *cpu.CPU
	MMC    *mmc.MMC
	Kernel *kernel.Kernel
	Procs  []*Proc
}

// NewMulti assembles the shared machine and one address space per
// workload. quantum is the scheduling quantum in CPU cycles.
func NewMulti(cfg Config, workloads []workload.Workload, quantum stats.Cycles) *MultiSystem {
	if len(workloads) == 0 {
		panic("sim: no workloads")
	}
	if quantum <= 0 {
		panic("sim: non-positive quantum")
	}
	// Build the shared hardware exactly as New does, but with one HPT
	// and VM per process.
	base := New(cfg) // proc 0 uses the standard assembly
	ms := &MultiSystem{
		Cfg: cfg, Quantum: quantum,
		Dram: base.Dram, Frames: base.Frames, CPU: base.CPU,
		MMC: base.MMC, Kernel: base.Kernel,
	}
	ms.Procs = append(ms.Procs, &Proc{
		Workload: workloads[0], VM: base.VM,
		resume: make(chan struct{}), yield: make(chan struct{}),
	})

	for i, w := range workloads[1:] {
		// Each further process gets its own hashed page table in a
		// distinct kernel region, and its own VM over the shared
		// hardware.
		hptBase := HPTBase + arch.PAddr((i+1))*arch.PAddr(cfg.HPTEntries*ptable.EntryBytes)
		if !ms.Dram.Contains(hptBase + arch.PAddr(cfg.HPTEntries*ptable.EntryBytes)) {
			panic("sim: too many processes for the kernel reserve")
		}
		var stable *core.ShadowTable
		var shadowAlloc core.ShadowAllocator
		if base.Translator != nil {
			stable = base.Translator.Table()
			shadowAlloc = base.VM.ShadowAlloc
		}
		v := vm.New(vm.Deps{
			Dram: ms.Dram, Frames: ms.Frames,
			HPT: ptable.New(hptBase, cfg.HPTEntries),
			MMC: ms.MMC, Cache: base.Cache, CPUTLB: base.CPUTLB,
			ITLB: base.ITLB, Kernel: ms.Kernel,
			ShadowAlloc: shadowAlloc, STable: stable,
		})
		v.OnShootdown = ms.CPU.FlushMemo
		ms.Procs = append(ms.Procs, &Proc{
			Workload: w, VM: v,
			resume: make(chan struct{}), yield: make(chan struct{}),
		})
	}
	return ms
}

// Run executes all processes to completion under round-robin scheduling
// and returns total machine cycles.
func (ms *MultiSystem) Run() stats.Cycles {
	c := ms.CPU
	c.Charge(ms.Kernel.Boot(), cpu.KernelTime)
	c.Quantum = ms.Quantum

	// Launch each process body, parked until first scheduled.
	for _, p := range ms.Procs {
		p := p
		go func() {
			<-p.resume
			c.Charge(ms.Kernel.StartProcess(), cpu.KernelTime)
			if p.Workload.SbrkSuperpages() && p.VM.HasShadow() {
				sc := p.VM.SbrkConfigNow()
				sc.Superpages = true
				p.VM.ConfigureSbrk(sc)
			}
			p.Workload.Run(c)
			c.Charge(ms.Kernel.ExitProcess(), cpu.KernelTime)
			p.done = true
			p.yield <- struct{}{}
		}()
	}

	// The scheduler: strict round robin over unfinished processes.
	// OnQuantum suspends the running goroutine and hands control back
	// here; exactly one goroutine runs at a time, so the simulation
	// stays deterministic.
	var current *Proc
	c.OnQuantum = func() {
		// Capture the running proc: the scheduler reassigns `current`
		// between our yield send and the next resume, and we must wait
		// on our own channel.
		me := current
		me.yield <- struct{}{}
		<-me.resume
	}

	remaining := len(ms.Procs)
	idx := 0
	for remaining > 0 {
		p := ms.Procs[idx%len(ms.Procs)]
		idx++
		if p.done {
			continue
		}
		// Dispatch p: context switch if the CPU was running another
		// address space. The switch cost is attributed to the incoming
		// process, as its slice pays for being dispatched.
		before := c.Breakdown
		if current != p {
			if current != nil || c.VM != p.VM {
				c.SwitchVM(p.VM)
			}
			p.Switches++
		}
		current = p
		p.resume <- struct{}{}
		<-p.yield
		delta := c.Breakdown
		p.Cycles += delta.Total() - before.Total()
		p.TLBMissCycles += delta.TLBMiss - before.TLBMiss

		if p.done {
			remaining--
		}
	}
	c.OnQuantum = nil
	c.Quantum = 0
	return c.Breakdown.Total()
}

// String summarizes per-process accounting.
func (ms *MultiSystem) String() string {
	s := ""
	for i, p := range ms.Procs {
		s += fmt.Sprintf("proc %d (%s): %d cycles, %d switches, tlb-miss %d\n",
			i, p.Workload.Name(), p.Cycles, p.Switches, p.TLBMissCycles)
	}
	return s
}
