//go:build race

package sim_test

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation slows the simulator severalfold and
// would trip wall-time assertions.
const raceEnabled = true
