package sim_test

import (
	"testing"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/core"
	"shadowtlb/internal/sim"
	"shadowtlb/internal/workload"
)

// warm brings a system to a steady state: the data region is allocated
// and touched, and enough instructions have retired that the rotating
// text-page ifetches have populated the TLB. After this, the hot loop
// in the alloc tests exercises only hit paths and handled misses — no
// first-touch page faults — which is exactly the regime the zero-alloc
// guarantee covers.
func warm(t *testing.T, cfg sim.Config) (*sim.System, arch.VAddr) {
	t.Helper()
	s := sim.New(cfg)
	base := s.CPU.AllocRegion("alloc-test", 64*arch.PageSize)
	for off := uint64(0); off < 64*arch.PageSize; off += arch.PageSize {
		s.CPU.Store(base+arch.VAddr(off), 8, off)
	}
	s.CPU.Step(10_000) // cycle through every text page at least once
	return s, base
}

// TestHotLoopZeroAllocs pins the engine's allocation contract: once
// warm, Load, Store and Step never touch the heap — with the fast path
// on or off, and with or without an MTLB behind the cache.
func TestHotLoopZeroAllocs(t *testing.T) {
	configs := map[string]sim.Config{
		"base-fast": sim.Default().WithTLB(64),
		"mtlb-fast": sim.Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig()),
	}
	slow := sim.Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig())
	slow.NoFastPath = true
	configs["mtlb-slow"] = slow

	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			s, base := warm(t, cfg)
			i := uint64(0)
			avg := testing.AllocsPerRun(200, func() {
				// A small stride walks several pages and lines, mixing
				// memo hits, memo misses, and TLB-hit slow paths.
				va := base + arch.VAddr((i*264)%(64*arch.PageSize))
				s.CPU.Load(va, 8)
				s.CPU.Store(va, 8, i)
				s.CPU.Step(3)
				i++
			})
			if avg != 0 {
				t.Errorf("hot loop allocates %.1f objects per iteration, want 0", avg)
			}
		})
	}
}

// TestStreamZeroAllocs extends the contract to batched delivery: a
// CPU.Stream call over a fixed Ref array must not allocate either.
func TestStreamZeroAllocs(t *testing.T) {
	s, base := warm(t, sim.Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig()))
	var refs [16]workload.Ref
	i := uint64(0)
	avg := testing.AllocsPerRun(200, func() {
		for j := range refs {
			va := base + arch.VAddr((i*264)%(64*arch.PageSize))
			refs[j] = workload.Ref{VA: va, Val: i, Size: 8, Store: j%3 == 0, Step: 2}
			i++
		}
		s.CPU.Stream(refs[:])
	})
	if avg != 0 {
		t.Errorf("Stream allocates %.1f objects per batch, want 0", avg)
	}
}
