package sim

import (
	"bytes"
	"testing"

	"shadowtlb/internal/trace"
	"shadowtlb/internal/workload"
	"shadowtlb/internal/workload/radix"
)

// Recording a workload and replaying its trace on an identical machine
// must reproduce the cycle count exactly — the trace-driven and
// execution-driven modes are interchangeable.
func TestTraceReplayIsCycleExact(t *testing.T) {
	cfg := smallMTLB().WithTLB(64)

	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := radix.New(radix.SmallConfig())
	rec := &recordingWorkload{inner: orig, w: tw}
	recorded := RunOn(cfg, rec)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	replayed := RunOn(cfg, &trace.Replay{Records: recs})

	if replayed.TotalCycles() != recorded.TotalCycles() {
		t.Errorf("replay cycles %d != recorded %d",
			replayed.TotalCycles(), recorded.TotalCycles())
	}
	if replayed.TLBMisses != recorded.TLBMisses {
		t.Errorf("replay TLB misses %d != recorded %d",
			replayed.TLBMisses, recorded.TLBMisses)
	}
	if replayed.Fills != recorded.Fills {
		t.Errorf("replay fills %d != recorded %d", replayed.Fills, recorded.Fills)
	}
}

// Replaying the same trace on a different configuration still works and
// produces that configuration's timing.
func TestTraceReplayAcrossConfigs(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := trace.NewWriter(&buf)
	RunOn(smallMTLB().WithTLB(64),
		&recordingWorkload{inner: radix.New(radix.SmallConfig()), w: tw})
	tw.Flush()
	recs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	base := RunOn(small().WithTLB(64), &trace.Replay{Records: recs})
	mtlb := RunOn(smallMTLB().WithTLB(64), &trace.Replay{Records: recs})
	if base.TotalCycles() == mtlb.TotalCycles() {
		t.Error("different configurations should time differently")
	}
	if base.SuperpagesMade != 0 || mtlb.SuperpagesMade == 0 {
		t.Error("remap records should apply only on the MTLB system")
	}
}

// recordingWorkload wraps a workload with the trace recorder.
type recordingWorkload struct {
	inner workload.Workload
	w     *trace.Writer
}

func (r *recordingWorkload) Name() string         { return r.inner.Name() }
func (r *recordingWorkload) SbrkSuperpages() bool { return r.inner.SbrkSuperpages() }
func (r *recordingWorkload) Run(env workload.Env) {
	r.inner.Run(&trace.Recorder{Env: env, W: r.w})
}
