package sim

import (
	"fmt"
	"strconv"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/bus"
	"shadowtlb/internal/cache"
	"shadowtlb/internal/core"
	"shadowtlb/internal/cpu"
	"shadowtlb/internal/kernel"
	"shadowtlb/internal/mem"
	"shadowtlb/internal/mmc"
	"shadowtlb/internal/obs"
	"shadowtlb/internal/ptable"
	"shadowtlb/internal/stats"
	"shadowtlb/internal/tlb"
	"shadowtlb/internal/vm"
	"shadowtlb/internal/workload"
)

// Multicore machine. SMPSystem generalizes System to N processors, each
// with its own front TLB, micro-ITLB and §10 fast-path memo, sharing
// one bus, data cache, MMC (and through it the MTLB and shadow space),
// DRAM, frame pool and kernel — the shape the die-stacked multicore TLB
// literature probes, and ROADMAP item 4.
//
// Two workload shapes run on it:
//
//   - workload.Parallel: one process, one shared address space, one
//     thread per CPU. Remaps by any thread shoot down stale TLB entries
//     and memos on every other CPU, charging IPI dispatch and handler
//     cycles (Costs.ShootdownIPI / Costs.ShootdownAck).
//   - workload.Multi: a multiprogrammed mix — independent processes in
//     per-process address spaces, statically assigned round-robin to
//     CPUs (member i on CPU i mod N, same-CPU members run back to back
//     with a context switch). Address spaces are private, so no
//     cross-CPU shootdowns arise; pressure on the shared MTLB and bus
//     is the object of study.
//
// Any other workload runs serially on CPU 0 with the remaining CPUs
// idle.
//
// Execution is the generator/committer lockstep described in DESIGN
// §17: each simulated CPU's workload thread runs on a real goroutine
// against a private functional page mirror, emitting bounded reference
// quanta; a single committer drains the quanta through the timing model
// in a fixed per-round arbitration order. All timing state is mutated
// by the committer alone, so results are bit-identical for any
// GOMAXPROCS while generation overlaps commit on multi-core hosts.
type SMPSystem struct {
	Cfg Config
	N   int

	Dram       *mem.DRAM
	Frames     *mem.FrameAlloc
	Bus        *bus.Bus
	Cache      *cache.Cache
	HPT        *ptable.Table
	Translator core.Translator
	MMC        *mmc.MMC
	Kernel     *kernel.Kernel

	// CPUs are the processors; CPUs[i].TLB and .ITLB are private.
	CPUs []*cpu.CPU
	// VMs are the address spaces: exactly one in shared (Parallel)
	// mode, one per mix member in multiprogrammed mode.
	VMs []*vm.VM
	// Shared reports whether all CPUs share VMs[0].
	Shared bool

	// Per-CPU accounting maintained by the executor.
	Idle     []stats.Cycles // cycles idle at barriers (not in Breakdown)
	BusStall []stats.Cycles // contention stalls (also in Breakdown.Memory)
	IPIsSent []uint64
	IPIsRecv []uint64

	// MachineCycles is the simulated wall clock after Run: the slowest
	// processor's completion time including barrier idling.
	MachineCycles uint64

	// OnQuantum, when set, fires after each lockstep round commits,
	// with the machine in a consistent state: the fault injector's and
	// invariant sweeps' multicore hook.
	OnQuantum func(round uint64)
	// OnRunEnd fires after the workload and process exits complete,
	// before the result is collected — the final whole-machine audit.
	OnRunEnd func()

	w       workload.Workload
	threads []smpThread // one per CPU: its program and address spaces
	seq     bool        // reference sequential executor (see RunSequential)
	ran     bool
	cur     int // CPU whose stream the committer is currently committing
	obs     *obs.Obs
}

// smpThread is the program one CPU executes: in shared mode a single
// Parallel thread; in multiprogrammed mode a sequence of members, each
// with its own VM.
type smpThread struct {
	members []workload.Workload // nil in shared mode
	vms     []*vm.VM            // per-member address spaces
}

// OnNewSMPSystem, when set, is invoked with every multicore system
// NewSMP assembles, immediately after wiring completes — the multicore
// twin of OnNewSystem, with the same concurrency contract.
var OnNewSMPSystem func(*SMPSystem)

// NewSMP assembles the multicore machine for the given workload. The
// workload determines the machine's address-space shape (shared vs.
// multiprogrammed), so unlike New it is needed at assembly time.
func NewSMP(cfg Config, w workload.Workload) *SMPSystem {
	if cfg.SMP == nil {
		panic("sim: NewSMP without Config.SMP")
	}
	n := cfg.SMP.CPUs
	if n <= 0 {
		panic(fmt.Sprintf("sim: bad CPU count %d", n))
	}

	base := New(cfg) // CPU 0 and the shared substrate use the standard assembly
	s := &SMPSystem{
		Cfg: cfg, N: n,
		Dram: base.Dram, Frames: base.Frames, Bus: base.Bus,
		Cache: base.Cache, HPT: base.HPT, Translator: base.Translator,
		MMC: base.MMC, Kernel: base.Kernel,
		CPUs:     []*cpu.CPU{base.CPU},
		Idle:     make([]stats.Cycles, n),
		BusStall: make([]stats.Cycles, n),
		IPIsSent: make([]uint64, n),
		IPIsRecv: make([]uint64, n),
		w:        w,
	}

	ccfg := cpu.Config{
		TLBEntries:   cfg.CPUTLBEntries,
		TextPages:    cfg.TextPages,
		IFetchPeriod: cfg.IFetchPeriod,
		NoFastPath:   cfg.NoFastPath,
	}
	for i := 1; i < n; i++ {
		t := tlb.New(tlb.FullyAssociative(cfg.CPUTLBEntries))
		it := &tlb.MicroITLB{}
		s.CPUs = append(s.CPUs, cpu.NewOnTLBs(ccfg, base.VM, t, it))
	}

	switch pw := w.(type) {
	case workload.Parallel:
		_ = pw
		s.Shared = true
		s.VMs = []*vm.VM{base.VM}
		// Every processor's TLB pair consumes the shared address space:
		// remap and recolor purge the affected range on all of them,
		// and the shootdown hook below charges the IPI round.
		for i := 1; i < n; i++ {
			base.VM.AddPeerTLB(s.CPUs[i].TLB, s.CPUs[i].ITLB)
		}
		base.VM.OnShootdown = s.shootdownIPI
		s.threads = make([]smpThread, n)
	case workload.Multi:
		members := pw.Members()
		s.threads = make([]smpThread, n)
		for m, mw := range members {
			i := m % n
			v := base.VM
			if m > 0 {
				// Each further process gets its own hashed page table
				// in a distinct kernel region and its own VM over the
				// shared hardware, with the owning CPU's TLB pair.
				hptBase := HPTBase + arch.PAddr(m)*arch.PAddr(cfg.HPTEntries*ptable.EntryBytes)
				if !s.Dram.Contains(hptBase + arch.PAddr(cfg.HPTEntries*ptable.EntryBytes)) {
					panic("sim: too many mix members for the kernel reserve")
				}
				var stable *core.ShadowTable
				var shadowAlloc core.ShadowAllocator
				if base.Translator != nil {
					stable = base.Translator.Table()
					shadowAlloc = base.VM.ShadowAlloc
				}
				v = vm.New(vm.Deps{
					Dram: s.Dram, Frames: s.Frames,
					HPT: ptable.New(hptBase, cfg.HPTEntries),
					MMC: s.MMC, Cache: s.Cache,
					CPUTLB: s.CPUs[i].TLB, ITLB: s.CPUs[i].ITLB,
					Kernel:      s.Kernel,
					ShadowAlloc: shadowAlloc, STable: stable,
				})
			}
			// Private address space: translation changes concern only
			// the owning CPU's memo. (Member 0 reuses base.VM, whose
			// hook New pointed at CPU 0 — the owning CPU.)
			v.OnShootdown = s.CPUs[i].FlushMemo
			s.VMs = append(s.VMs, v)
			s.threads[i].members = append(s.threads[i].members, mw)
			s.threads[i].vms = append(s.threads[i].vms, v)
		}
		if len(members) > 0 && len(s.threads[0].vms) > 0 && s.threads[0].vms[0] != base.VM {
			panic("sim: mix member 0 must run on CPU 0")
		}
	default:
		// Serial workload: CPU 0 runs it alone, the rest stay idle.
		s.VMs = []*vm.VM{base.VM}
		s.threads = make([]smpThread, n)
		s.threads[0].members = []workload.Workload{w}
		s.threads[0].vms = []*vm.VM{base.VM}
	}

	if OnNewSMPSystem != nil {
		OnNewSMPSystem(s)
	}
	return s
}

// shootdownIPI is the shared-address-space shootdown broadcaster,
// installed as VMs[0].OnShootdown: the initiating CPU (the one whose
// stream the committer is draining) pays one IPI dispatch per remote
// processor; each remote processor pays the handler cost and loses its
// micro-ITLB and fast-path memo. The stale front-TLB range itself was
// already purged by the VM's peer fan-out before this hook fires.
func (s *SMPSystem) shootdownIPI() {
	i := s.cur
	s.CPUs[i].FlushMemo()
	if s.N == 1 {
		return
	}
	c := s.Kernel.Costs
	for j := range s.CPUs {
		if j == i {
			continue
		}
		s.CPUs[j].ITLB.Purge()
		s.CPUs[j].FlushMemo()
		s.CPUs[i].Charge(stats.Cycles(c.ShootdownIPI), cpu.KernelTime)
		s.CPUs[j].Charge(stats.Cycles(c.ShootdownAck), cpu.KernelTime)
		s.IPIsSent[i]++
		s.IPIsRecv[j]++
	}
}

// clock returns CPU i's position on the machine's time axis: work
// charged plus cycles idled at barriers.
func (s *SMPSystem) clock(i int) uint64 {
	return uint64(s.CPUs[i].Breakdown.Total() + s.Idle[i])
}

// Run executes the workload to completion and collects the result.
func (s *SMPSystem) Run() Result {
	if s.ran {
		panic("sim: SMPSystem ran twice")
	}
	s.ran = true
	s.runLockstep()

	if s.OnRunEnd != nil {
		s.OnRunEnd()
	}

	var bd stats.Breakdown
	var instr uint64
	var th stats.HitMiss
	var reach uint64
	for i, c := range s.CPUs {
		bd.Add(c.Breakdown)
		instr += c.Instructions
		th.Hits += c.TLB.Stats.Hits
		th.Misses += c.TLB.Stats.Misses
		if r := c.TLB.Reach(); r > reach {
			reach = r
		}
		if cl := s.clock(i); cl > s.MachineCycles {
			s.MachineCycles = cl
		}
	}
	res := Result{
		Label:        s.Cfg.Label,
		Workload:     s.w.Name(),
		Breakdown:    bd,
		Instructions: instr,
		TLBHitRate:   th.Rate(),
		CacheHitRate: s.Cache.Stats.Rate(),
		Fills:        s.MMC.Fills,
		StreamHits:   s.MMC.StreamHits(),
		AvgFillMMC:   s.MMC.AvgFillMMCCycles(),
		RowHitRate:   s.MMC.RowHitRate(),
	}
	for _, v := range s.VMs {
		res.TLBMisses += v.TLBMisses
		res.PageFaults += v.PageFaults
	}
	if s.Translator != nil {
		c := s.Translator.Counters()
		res.HasMTLB = true
		res.Scheme = s.Translator.Scheme()
		res.MTLBHitRate = c.HitRate()
		res.MTLBFills = c.Fills
		for _, v := range s.VMs {
			res.SuperpagesMade += v.SuperpagesMade
			res.PagesRemapped += v.PagesRemapped
		}
	}
	res.CPUTLBReachPeak = reach
	res.CPUs = s.N
	res.MachineCycles = s.MachineCycles
	res.MaxCPUCycles = 0
	res.MinCPUCycles = ^uint64(0)
	for i := range s.CPUs {
		w := uint64(s.CPUs[i].Breakdown.Total())
		if w > res.MaxCPUCycles {
			res.MaxCPUCycles = w
		}
		if w < res.MinCPUCycles {
			res.MinCPUCycles = w
		}
		res.IPIs += s.IPIsRecv[i]
		res.BusStallCycles += uint64(s.BusStall[i])
		res.BarrierCycles += uint64(s.Idle[i])
	}
	s.obs.Sampler().Final(s.MachineCycles)
	return res
}

// Observe attaches an observability session: shared components register
// their usual metrics, CPU 0 additionally drives the sampler and
// timeline (as the boot processor), and per-CPU cycle totals appear as
// one labeled series per processor under smp.*.
func (s *SMPSystem) Observe(o *obs.Obs) {
	if o == nil {
		return
	}
	s.obs = o
	if tl := o.Timeline(); tl != nil {
		tl.Now = func() uint64 { return uint64(s.CPUs[0].Cycles()) }
	}
	r := o.Registry()
	s.CPUs[0].TLB.RegisterMetrics(r, "tlb")
	s.Cache.RegisterMetrics(r)
	s.Kernel.RegisterMetrics(r)
	if s.Translator != nil {
		s.Translator.RegisterMetrics(r)
	}
	s.MMC.Observe(o)
	s.VMs[0].Observe(o)
	s.CPUs[0].Observe(o)
	for i := range s.CPUs {
		i := i
		l := obs.Label{Key: "cpu", Value: strconv.Itoa(i)}
		r.CounterFuncL("smp.cpu_cycles", func() uint64 { return uint64(s.CPUs[i].Breakdown.Total()) }, l)
		r.CounterFuncL("smp.barrier_idle_cycles", func() uint64 { return uint64(s.Idle[i]) }, l)
		r.CounterFuncL("smp.bus_stall_cycles", func() uint64 { return uint64(s.BusStall[i]) }, l)
		r.CounterFuncL("smp.ipis_received", func() uint64 { return s.IPIsRecv[i] }, l)
	}
	r.CounterFunc("smp.ipis", func() uint64 {
		var t uint64
		for i := range s.IPIsRecv {
			t += s.IPIsRecv[i]
		}
		return t
	})
	r.GaugeFunc("smp.machine_cycles", func() float64 { return float64(s.MachineCycles) })
}

// RunSMP assembles a fresh multicore machine and runs the workload.
func RunSMP(cfg Config, w workload.Workload) Result {
	return NewSMP(cfg, w).Run()
}

// RunSMPObserved is RunSMP with an observability session attached; a
// nil o degrades to RunSMP exactly.
func RunSMPObserved(cfg Config, w workload.Workload, o *obs.Obs) Result {
	s := NewSMP(cfg, w)
	s.Observe(o)
	return s.Run()
}

// RunSMPSequential runs the workload on the reference executor: the
// same machine and commit order, but generators are paced so that at
// most one goroutine is runnable at any point after startup — the
// multicore twin of MultiSystem's resume/yield scheduling. The
// determinism suite diffs its Results against the pipelined executor's;
// any divergence means timing state leaked into the generators.
func RunSMPSequential(cfg Config, w workload.Workload) Result {
	s := NewSMP(cfg, w)
	s.seq = true
	return s.Run()
}
