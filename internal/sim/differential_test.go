package sim_test

import (
	"reflect"
	"sort"
	"testing"

	"shadowtlb/internal/core"
	"shadowtlb/internal/exp"
	"shadowtlb/internal/obs"
	"shadowtlb/internal/sim"
	"shadowtlb/internal/stats"
	"shadowtlb/internal/workload"
	"shadowtlb/internal/workload/radix"
)

// TestFastPathDifferential is the engine's correctness keystone: for
// every simulation cell any registered experiment declares at small
// scale, running with the fast-path engine enabled and disabled must
// produce byte-identical results — cycle breakdowns, hit rates,
// superpage counts, everything sim.Result carries. Under -short a
// deterministic spread of the cells is checked; the full matrix runs in
// the long mode.
func TestFastPathDifferential(t *testing.T) {
	cells := map[string]exp.Cell{}
	for _, d := range exp.Descriptors() {
		if d.Cells == nil {
			continue
		}
		for _, c := range d.Cells(exp.Small) {
			c.Cfg.NoFastPath = false
			cells[c.Key()] = c
		}
	}
	if len(cells) == 0 {
		t.Fatal("no experiment declared any cells")
	}
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if testing.Short() {
		// Every 7th cell: a deterministic cross-section of workloads
		// and configurations rather than an alphabetic prefix.
		var subset []string
		for i := 0; i < len(keys); i += 7 {
			subset = append(subset, keys[i])
		}
		keys = subset
	}

	for _, k := range keys {
		fast := cells[k]
		slow := fast
		slow.Cfg.NoFastPath = true
		rf := fast.Simulate()
		rs := slow.Simulate()
		if rf != rs {
			t.Errorf("cell %s:\n  fast: %+v\n  slow: %+v", k, rf, rs)
		}
	}
}

// TestFastPathDifferentialObsCounters extends the equivalence to the
// observability layer: every registered metric — TLB and cache hit/miss
// counters, MTLB fills, kernel and VM counters — must dump identically
// with the engine on and off.
func TestFastPathDifferentialObsCounters(t *testing.T) {
	run := func(noFast bool) []obs.DumpMetric {
		cfg := sim.Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig())
		cfg.NoFastPath = noFast
		w, err := exp.MakeWorkload("em3d", exp.Small)
		if err != nil {
			t.Fatal(err)
		}
		o := obs.New(obs.Options{})
		sim.RunObserved(cfg, w, o)
		return o.Registry().Dump()
	}
	fast, slow := run(false), run(true)
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("registry dumps diverge:\nfast: %+v\nslow: %+v", fast, slow)
	}
}

// TestFastPathDifferentialMulti covers preemptive multiprogramming: two
// time-sliced processes share one TLB and cache, so every quantum ends
// in a SwitchVM that must kill the memo. Totals and per-process
// accounting must match with the engine on and off.
func TestFastPathDifferentialMulti(t *testing.T) {
	type procStat struct {
		Cycles, TLBMiss stats.Cycles
		Switches        uint64
	}
	run := func(noFast bool) (stats.Cycles, []procStat) {
		cfg := sim.Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig())
		cfg.NoFastPath = noFast
		w1, err := exp.MakeWorkload("radix", exp.Small)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := exp.MakeWorkload("em3d", exp.Small)
		if err != nil {
			t.Fatal(err)
		}
		ms := sim.NewMulti(cfg, []workload.Workload{w1, w2}, 50_000)
		total := ms.Run()
		var ps []procStat
		for _, p := range ms.Procs {
			ps = append(ps, procStat{p.Cycles, p.TLBMissCycles, p.Switches})
		}
		return total, ps
	}
	tf, pf := run(false)
	ts, ps := run(true)
	if tf != ts {
		t.Errorf("total cycles diverge: fast %d, slow %d", tf, ts)
	}
	if !reflect.DeepEqual(pf, ps) {
		t.Errorf("per-process accounting diverges:\nfast: %+v\nslow: %+v", pf, ps)
	}
}

// TestFastPathDifferentialSwapPressure forces paging: radix remaps its
// whole space before initializing it, so every data page is shadow-backed
// and reclaimable; capping frames below the footprint makes the page-out
// daemon swap superpage base pages in and out under the running workload,
// so memoized shadow translations go stale mid-run. Both engines must
// agree, and the pressure must actually have occurred.
func TestFastPathDifferentialSwapPressure(t *testing.T) {
	run := func(noFast bool) (sim.Result, uint64) {
		cfg := sim.Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig())
		cfg.NoFastPath = noFast
		cfg.MaxUserFrames = 180 // ~260-page radix footprint: forces reclaim
		w := radix.New(radix.Config{Keys: 1 << 17, Radix: 256})
		s := sim.New(cfg)
		res := s.Run(w)
		if !w.Sorted {
			t.Fatal("radix run did not complete correctly")
		}
		return res, s.VM.SwapOuts
	}
	rf, outF := run(false)
	rs, outS := run(true)
	if rf != rs {
		t.Errorf("swap-pressure results diverge:\n  fast: %+v\n  slow: %+v", rf, rs)
	}
	if outF == 0 || outS == 0 {
		t.Errorf("test exerted no paging pressure (swap-outs fast=%d slow=%d)", outF, outS)
	}
}
