package sim

import (
	"testing"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/core"
	"shadowtlb/internal/workload"
	"shadowtlb/internal/workload/compress"
	"shadowtlb/internal/workload/em3d"
	"shadowtlb/internal/workload/gcc"
	"shadowtlb/internal/workload/radix"
	"shadowtlb/internal/workload/vortex"
)

// small returns a config with reduced DRAM for faster tests.
func small() Config {
	c := Default()
	c.DRAMBytes = 128 * arch.MB
	return c
}

func smallMTLB() Config {
	return small().WithMTLB(core.DefaultMTLBConfig())
}

func TestRandomWorkloadBothConfigs(t *testing.T) {
	w := func() *workload.RandomAccess {
		return &workload.RandomAccess{Bytes: 2 * arch.MB, Accesses: 400_000, WriteFrac: 30, Remapped: true, StepPer: 2}
	}
	base := RunOn(small().WithTLB(64), w())
	// Uniform random over 512 pages defeats a 128-entry MTLB too (the
	// paper's programs have structure; pure uniform access is the
	// mechanism's worst case), so size the MTLB to the working set —
	// the point of placing the TLB in the MMC is exactly that it can be
	// made much larger (§2.2).
	mtlb := RunOn(small().WithTLB(64).WithMTLB(core.MTLBConfig{Entries: 1024, Ways: 4}), w())

	if base.HasMTLB || !mtlb.HasMTLB {
		t.Fatal("HasMTLB flags wrong")
	}
	if mtlb.SuperpagesMade == 0 {
		t.Fatal("MTLB run created no superpages")
	}
	// 2MB random over a 64-entry TLB: the MTLB system must be
	// substantially faster and spend almost no time in TLB misses.
	if mtlb.TotalCycles() >= base.TotalCycles() {
		t.Errorf("MTLB run (%d) not faster than base (%d)", mtlb.TotalCycles(), base.TotalCycles())
	}
	if base.TLBFraction() < 0.10 {
		t.Errorf("base TLB fraction = %.3f, expected thrashing", base.TLBFraction())
	}
	if mtlb.TLBFraction() > 0.05 {
		t.Errorf("MTLB TLB fraction = %.3f, want < 5%%", mtlb.TLBFraction())
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Result {
		return RunOn(smallMTLB().WithTLB(64),
			&workload.RandomAccess{Bytes: 1 * arch.MB, Accesses: 20_000, WriteFrac: 50, Remapped: true})
	}
	a, b := mk(), mk()
	if a.TotalCycles() != b.TotalCycles() || a.TLBMisses != b.TLBMisses ||
		a.Breakdown != b.Breakdown {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestStrideFriendlyWorkloadUnaffected(t *testing.T) {
	// A cache/TLB-friendly workload should see little MTLB benefit —
	// and only a tiny slowdown from the check cycle.
	w := func() *workload.StrideAccess {
		return &workload.StrideAccess{Bytes: 64 * arch.KB, Stride: 8, Passes: 5}
	}
	base := RunOn(small().WithTLB(96), w())
	mtlb := RunOn(smallMTLB().WithTLB(96), w())
	ratio := float64(mtlb.TotalCycles()) / float64(base.TotalCycles())
	if ratio > 1.02 || ratio < 0.98 {
		t.Errorf("friendly workload ratio = %.4f, want ~1.0", ratio)
	}
}

func TestPointerChase(t *testing.T) {
	w := &workload.PointerChase{Nodes: 20_000, Hops: 30_000, Remapped: true}
	res := RunOn(smallMTLB().WithTLB(64), w)
	if res.TotalCycles() == 0 || res.Instructions == 0 {
		t.Fatal("empty result")
	}
	if res.SuperpagesMade == 0 {
		t.Error("chase region not remapped")
	}
}

func TestCompressSmall(t *testing.T) {
	w := compress.New(compress.SmallConfig())
	res := RunOn(smallMTLB().WithTLB(64), w)
	if w.CompressedLen == 0 || w.CompressedLen >= w.Cfg.Chars {
		t.Errorf("CompressedLen = %d of %d input bytes", w.CompressedLen, w.Cfg.Chars)
	}
	// The four regions must be superpage-backed: 10 + 13 + 7 + 13 = 43
	// at paper alignments (region sizes are the paper's even in small
	// configs; only the input length shrinks).
	if res.SuperpagesMade != 43 {
		t.Errorf("SuperpagesMade = %d, want 43 (10+13+7+13)", res.SuperpagesMade)
	}
}

func TestCompressSuperpageCountsPerRegion(t *testing.T) {
	s := New(smallMTLB().WithTLB(96))
	w := compress.New(compress.SmallConfig())
	s.Run(w)
	want := map[string]int{"tables": 10, "orig": 13, "comp": 7, "decomp": 13}
	for name, n := range want {
		r := s.VM.FindRegion(name)
		if r == nil {
			t.Fatalf("region %q missing", name)
		}
		if len(r.Superpages) != n {
			t.Errorf("region %q: %d superpages, want %d (paper §3.1)", name, len(r.Superpages), n)
		}
	}
}

func TestRadixSmall(t *testing.T) {
	w := radix.New(radix.SmallConfig())
	res := RunOn(smallMTLB().WithTLB(64), w)
	if !w.Sorted {
		t.Error("radix output not sorted")
	}
	if res.SuperpagesMade == 0 {
		t.Error("radix space not remapped")
	}
}

func TestRadixPaperSpaceSuperpageCount(t *testing.T) {
	// The paper's space (8,437,760 bytes) maps to exactly 14 superpages
	// at radix's alignment. Verify the remap walk without running the
	// full 1M-key sort: allocate and remap the same region directly.
	s := New(smallMTLB())
	r := s.VM.AllocRegionAligned("radixspace", radix.PaperSpaceBytes, 4*arch.MB, 64*arch.KB)
	if _, err := s.VM.EnsureMapped(r.Base, r.Size); err != nil {
		t.Fatal(err)
	}
	res, err := s.VM.Remap(r.Base, r.Size)
	if err != nil {
		t.Fatal(err)
	}
	if res.Superpages != 14 {
		t.Errorf("superpages = %d, want 14 (paper §3.1)", res.Superpages)
	}
	if res.PagesRemapped != radix.PaperSpaceBytes/arch.PageSize {
		t.Errorf("pages = %d, want %d", res.PagesRemapped, radix.PaperSpaceBytes/arch.PageSize)
	}
}

func TestEm3dPaperSpaceSuperpageCount(t *testing.T) {
	// 1120 pages at em3d's alignment -> 16 superpages (paper §3.1/3.3).
	s := New(smallMTLB())
	r := s.VM.AllocRegionAligned("em3dspace", em3d.PaperSpaceBytes, 4*arch.MB, 16*arch.KB)
	if _, err := s.VM.EnsureMapped(r.Base, r.Size); err != nil {
		t.Fatal(err)
	}
	res, err := s.VM.Remap(r.Base, r.Size)
	if err != nil {
		t.Fatal(err)
	}
	if res.Superpages != 16 {
		t.Errorf("superpages = %d, want 16 (paper §3.1)", res.Superpages)
	}
	if res.PagesRemapped != 1120 {
		t.Errorf("pages = %d, want 1120 (paper §3.3)", res.PagesRemapped)
	}
}

func TestEm3dSmall(t *testing.T) {
	mk := func() *em3d.Em3d { return em3d.New(em3d.SmallConfig()) }
	base := RunOn(small().WithTLB(64), mk())
	w := mk()
	mtlb := RunOn(smallMTLB().WithTLB(64), w)
	if w.Checksum == 0 {
		t.Error("zero checksum")
	}
	_ = base
	_ = mtlb
}

func TestEm3dChecksumInvariantAcrossConfigs(t *testing.T) {
	// The program's computed result must not depend on the machine
	// configuration — only timing changes.
	w1 := em3d.New(em3d.SmallConfig())
	w2 := em3d.New(em3d.SmallConfig())
	RunOn(small().WithTLB(64), w1)
	RunOn(smallMTLB().WithTLB(128), w2)
	if w1.Checksum != w2.Checksum {
		t.Errorf("checksums differ: %#x vs %#x", w1.Checksum, w2.Checksum)
	}
}

func TestVortexSmallUsesSbrkSuperpages(t *testing.T) {
	w := vortex.New(vortex.SmallConfig())
	res := RunOn(smallMTLB().WithTLB(64), w)
	if w.Lookups == 0 {
		t.Error("no transactions completed")
	}
	if res.SuperpagesMade == 0 {
		t.Error("modified sbrk created no superpages")
	}
}

func TestGccSmall(t *testing.T) {
	w := gcc.New(gcc.SmallConfig())
	res := RunOn(smallMTLB().WithTLB(64), w)
	if w.NodesBuilt == 0 || w.Allocated == 0 {
		t.Error("gcc built nothing")
	}
	if res.SuperpagesMade == 0 {
		t.Error("gcc sbrk created no superpages")
	}
}

func TestBaselineRunsAllWorkloads(t *testing.T) {
	// Workloads must run unchanged (remap a no-op) on MTLB-less systems.
	for _, w := range []workload.Workload{
		compress.New(compress.SmallConfig()),
		radix.New(radix.SmallConfig()),
		em3d.New(em3d.SmallConfig()),
		vortex.New(vortex.SmallConfig()),
		gcc.New(gcc.SmallConfig()),
	} {
		res := RunOn(small().WithTLB(96), w)
		if res.SuperpagesMade != 0 {
			t.Errorf("%s: superpages on baseline", w.Name())
		}
		if res.TotalCycles() == 0 {
			t.Errorf("%s: empty run", w.Name())
		}
	}
}

func TestConfigLabels(t *testing.T) {
	c := Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig())
	if c.Label != "tlb64+mtlb128/2w" {
		t.Errorf("Label = %q", c.Label)
	}
	c2 := Default().WithMTLB(core.DefaultMTLBConfig()).WithTLB(64)
	if c2.Label != "tlb64+mtlb128/2w" {
		t.Errorf("Label = %q", c2.Label)
	}
}

func TestShadowOverlapPanics(t *testing.T) {
	c := Default()
	c.DRAMBytes = 4 * arch.GB // covers the shadow base
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(c)
}

func TestWorkloadUnderMemoryPressure(t *testing.T) {
	// Radix remaps its whole space before initializing it (§3.1), so
	// every data page is shadow-backed and reclaimable. A 128K-key sort
	// needs ~260 pages; capping memory at 180 frames forces the run to
	// page superpages in and out through shadow faults to finish.
	mid := radix.Config{Keys: 1 << 17, Radix: 256}
	w := radix.New(mid)
	cfg := smallMTLB().WithTLB(64)
	cfg.MaxUserFrames = 180
	s := New(cfg)
	s.Run(w)
	if !w.Sorted {
		t.Fatal("run did not complete correctly")
	}
	if s.VM.Reclaims == 0 || s.VM.SwapOuts == 0 || s.VM.SwapIns == 0 {
		t.Errorf("no paging under pressure: reclaims=%d out=%d in=%d",
			s.VM.Reclaims, s.VM.SwapOuts, s.VM.SwapIns)
	}
	// Paging must not change the computation: the unconstrained run
	// sorts to the same result (radix panics internally if unsorted,
	// and Sorted asserts the full verification sweep passed).
	w2 := radix.New(mid)
	RunOn(smallMTLB().WithTLB(64), w2)
	if !w2.Sorted {
		t.Error("unconstrained run failed")
	}
}
