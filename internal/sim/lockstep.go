package sim

import (
	"fmt"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/cpu"
	"shadowtlb/internal/stats"
	"shadowtlb/internal/workload"
)

// The generator/committer lockstep executor (DESIGN §17).
//
// Each simulated CPU's thread runs as a real goroutine — the generator
// — executing actual workload code against a private functional page
// mirror (zero-filled on demand, exactly like DRAM frames), and emits
// its memory references in bounded quanta. A single committer goroutine
// receives one quantum per running CPU per round, in a deterministic
// arbitration order, and drains it through the full timing model:
// per-CPU TLB and memo, the shared cache, bus, MMC/MTLB and kernel.
//
// Every piece of timing state is touched by the committer alone, so
// the simulation is bit-identical for any GOMAXPROCS and any host
// schedule; generators run up to two quanta ahead, so workload-side
// compute overlaps commit and wall-clock scales with host cores.
//
// Allocation, sbrk and remap are control operations: the generator
// flushes its quantum with the operation attached, the committer
// executes it on the issuing CPU (in arbitration order, like any other
// reference), and the generator blocks until the reply arrives — so
// region bases are always the real VM's. Barriers flush and park the
// generator until every unfinished thread has reached one; the
// committer then aligns the waiters' clocks to the latest arrival,
// accounting the difference as barrier idle time.
//
// The committer verifies every committed load against the generator's
// mirrored value, so a workload that violates the page-ownership
// contract (two threads touching one page between barriers) fails
// loudly instead of silently diverging.

// smpQuantum is one generator-to-committer handover.
type smpQuantum struct {
	refs    []workload.Ref
	op      *ctrlOp // executed after refs commit
	barrier bool    // thread parks at a barrier after refs
	done    bool    // thread finished
}

type ctrlKind int

const (
	ctrlSbrk ctrlKind = iota
	ctrlRemap
	ctrlAllocRegion
	ctrlAllocAligned
	ctrlBeginProc
	ctrlEndProc
)

// ctrlOp is a control operation needing the committer's machine state.
type ctrlOp struct {
	kind                ctrlKind
	name                string
	size, align, offset uint64
	base                arch.VAddr // remap base
	k                   int        // member index (begin/end proc)
}

// ctrlReply carries the committer's answer back to the generator; it
// doubles as the barrier release and the sequential-mode pace token.
type ctrlReply struct {
	va arch.VAddr
	ok bool
}

// genEnv is the generator-side workload.Env: functional state only,
// references buffered into quanta.
type genEnv struct {
	pages map[uint64]*[arch.PageSize]byte
	buf   []workload.Ref
	q     int
	seq   bool

	out  chan smpQuantum
	ctl  chan ctrlReply
	free chan []workload.Ref
}

var _ workload.Env = (*genEnv)(nil)
var _ workload.Barrierer = (*genEnv)(nil)

func newGenEnv(q int, seq bool) *genEnv {
	e := &genEnv{
		pages: make(map[uint64]*[arch.PageSize]byte),
		buf:   make([]workload.Ref, 0, q),
		q:     q,
		seq:   seq,
		out:   make(chan smpQuantum, 1),
		ctl:   make(chan ctrlReply),
		free:  make(chan []workload.Ref, 2),
	}
	e.free <- make([]workload.Ref, 0, q) // one spare: generation runs ahead
	return e
}

// page returns the private backing page, zero-filled on demand — the
// same contents a fresh DRAM frame has, which is what keeps the mirror
// exact.
func (e *genEnv) page(va arch.VAddr) *[arch.PageSize]byte {
	pn := va.PageNum()
	p := e.pages[pn]
	if p == nil {
		p = new([arch.PageSize]byte)
		e.pages[pn] = p
	}
	return p
}

func (e *genEnv) checkAccess(va arch.VAddr, size int) {
	if size <= 0 || size > 8 {
		panic(fmt.Sprintf("sim: smp access size %d", size))
	}
	if va.PageOff()+uint64(size) > arch.PageSize {
		panic(fmt.Sprintf("sim: smp access at %v size %d crosses a page boundary", va, size))
	}
}

// emit buffers one reference, flushing a full quantum.
func (e *genEnv) emit(r workload.Ref) {
	e.buf = append(e.buf, r)
	if len(e.buf) >= e.q {
		e.flush(smpQuantum{}, e.seq)
	}
}

// flush hands the buffered references (plus any control payload in q)
// to the committer and takes a fresh buffer. When wait is true the
// generator parks until the committer answers — control operations and
// barriers always wait; in sequential mode every flush does, which is
// what serializes generation against commit.
func (e *genEnv) flush(q smpQuantum, wait bool) ctrlReply {
	q.refs = e.buf
	e.buf = nil
	e.out <- q
	var rep ctrlReply
	if wait {
		rep = <-e.ctl
	}
	if !q.done {
		e.buf = <-e.free
	}
	return rep
}

// Load reads the private mirror and records the reference, value
// included so the committer can verify functional agreement.
func (e *genEnv) Load(va arch.VAddr, size int) uint64 {
	e.checkAccess(va, size)
	p := e.page(va)
	off := va.PageOff()
	v := uint64(0)
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(p[off+uint64(i)])
	}
	e.emit(workload.Ref{VA: va, Val: v, Size: uint8(size)})
	return v
}

// Store writes the private mirror and records the reference.
func (e *genEnv) Store(va arch.VAddr, size int, val uint64) {
	e.checkAccess(va, size)
	p := e.page(va)
	off := va.PageOff()
	for i := 0; i < size; i++ {
		p[off+uint64(i)] = byte(val >> (8 * i))
	}
	e.emit(workload.Ref{VA: va, Val: val, Size: uint8(size), Store: true})
}

// Step folds instruction charges into the last buffered reference.
func (e *genEnv) Step(n int) {
	if n <= 0 {
		return
	}
	if len(e.buf) > 0 {
		r := &e.buf[len(e.buf)-1]
		if s := uint64(r.Step) + uint64(n); s <= 1<<31 {
			r.Step = uint32(s)
			return
		}
	}
	e.emit(workload.Ref{Step: uint32(n)})
}

// Sbrk is a control operation: the committer moves the real break.
func (e *genEnv) Sbrk(n uint64) arch.VAddr {
	return e.flush(smpQuantum{op: &ctrlOp{kind: ctrlSbrk, size: n}}, true).va
}

// Remap is a control operation: superpage promotion by the OS.
func (e *genEnv) Remap(base arch.VAddr, size uint64) bool {
	return e.flush(smpQuantum{op: &ctrlOp{kind: ctrlRemap, base: base, size: size}}, true).ok
}

// AllocRegion is a control operation; the returned base is the VM's.
func (e *genEnv) AllocRegion(name string, size uint64) arch.VAddr {
	return e.flush(smpQuantum{op: &ctrlOp{kind: ctrlAllocRegion, name: name, size: size}}, true).va
}

// AllocAligned is a control operation; the returned base is the VM's.
func (e *genEnv) AllocAligned(name string, size, align, offset uint64) arch.VAddr {
	op := &ctrlOp{kind: ctrlAllocAligned, name: name, size: size, align: align, offset: offset}
	return e.flush(smpQuantum{op: op}, true).va
}

// Barrier implements workload.Barrierer: park until every unfinished
// thread arrives.
func (e *genEnv) Barrier() {
	e.flush(smpQuantum{barrier: true}, true)
}

// beginProc starts mix member k on this CPU: the committer switches to
// its address space and charges process startup; the generator starts
// a fresh mirror, because it is a fresh address space.
func (e *genEnv) beginProc(k int) {
	e.flush(smpQuantum{op: &ctrlOp{kind: ctrlBeginProc, k: k}}, true)
	e.pages = make(map[uint64]*[arch.PageSize]byte)
}

// endProc retires mix member k (process exit accounting).
func (e *genEnv) endProc(k int) {
	e.flush(smpQuantum{op: &ctrlOp{kind: ctrlEndProc, k: k}}, true)
}

// finish flushes any tail references and announces completion.
func (e *genEnv) finish() {
	e.flush(smpQuantum{done: true}, false)
}

// runLockstep boots the machine, launches one generator per CPU, and
// commits quanta until every thread completes.
func (s *SMPSystem) runLockstep() {
	n := s.N
	q := s.Cfg.SMP.Quantum
	if q <= 0 {
		q = DefaultSMPQuantum
	}

	s.cur = 0
	s.CPUs[0].Charge(s.Kernel.Boot(), cpu.KernelTime)

	envs := make([]*genEnv, n)
	for i := range envs {
		envs[i] = newGenEnv(q, s.seq)
	}

	if s.Shared {
		// One process, one thread per CPU: fork/exec once on the boot
		// processor, then a dispatch on each further CPU.
		s.CPUs[0].Charge(s.Kernel.StartProcess(), cpu.KernelTime)
		if s.w.SbrkSuperpages() && s.VMs[0].HasShadow() {
			sc := s.VMs[0].SbrkConfigNow()
			sc.Superpages = true
			s.VMs[0].ConfigureSbrk(sc)
		}
		for i := 1; i < n; i++ {
			s.cur = i
			s.CPUs[i].Charge(stats.Cycles(s.Kernel.Costs.ContextSwitch), cpu.KernelTime)
		}
		p := s.w.(workload.Parallel)
		for i := 0; i < n; i++ {
			i := i
			go func() {
				p.RunThread(envs[i], i, n)
				envs[i].finish()
			}()
		}
	} else {
		for i := 0; i < n; i++ {
			i, th := i, s.threads[i]
			go func() {
				for k, m := range th.members {
					envs[i].beginProc(k)
					m.Run(envs[i])
					envs[i].endProc(k)
				}
				envs[i].finish()
			}()
		}
	}

	s.commitLoop(envs)

	if s.Shared {
		s.cur = 0
		s.CPUs[0].Charge(s.Kernel.ExitProcess(), cpu.KernelTime)
	}
}

// execOp performs a control operation on CPU i's machine state.
func (s *SMPSystem) execOp(i int, op *ctrlOp) ctrlReply {
	c := s.CPUs[i]
	switch op.kind {
	case ctrlSbrk:
		return ctrlReply{va: c.Sbrk(op.size)}
	case ctrlRemap:
		return ctrlReply{ok: c.Remap(op.base, op.size)}
	case ctrlAllocRegion:
		return ctrlReply{va: c.AllocRegion(op.name, op.size)}
	case ctrlAllocAligned:
		return ctrlReply{va: c.AllocAligned(op.name, op.size, op.align, op.offset)}
	case ctrlBeginProc:
		v := s.threads[i].vms[op.k]
		if c.VM != v {
			c.SwitchVM(v)
		}
		c.Charge(s.Kernel.StartProcess(), cpu.KernelTime)
		m := s.threads[i].members[op.k]
		if m.SbrkSuperpages() && v.HasShadow() {
			sc := v.SbrkConfigNow()
			sc.Superpages = true
			v.ConfigureSbrk(sc)
		}
		return ctrlReply{}
	case ctrlEndProc:
		c.Charge(s.Kernel.ExitProcess(), cpu.KernelTime)
		return ctrlReply{}
	}
	panic("sim: unknown control op")
}

// drainRefs commits one quantum through the timing model, verifying
// each load against the generator's mirrored value.
func (s *SMPSystem) drainRefs(c *cpu.CPU, refs []workload.Ref) {
	for i := range refs {
		r := &refs[i]
		if r.Size > 0 {
			if r.Store {
				c.Store(r.VA, int(r.Size), r.Val)
			} else if got := c.Load(r.VA, int(r.Size)); got != r.Val {
				panic(fmt.Sprintf(
					"sim: smp functional divergence at %v: machine %#x, generator %#x (page-ownership contract violated?)",
					r.VA, got, r.Val))
			}
		}
		if r.Step > 0 {
			c.Step(int(r.Step))
		}
	}
}

// Thread states in the commit loop.
const (
	stRunning = iota
	stBarrier
	stDone
)

// commitLoop is the committer: one quantum per running CPU per round,
// in an arbitration order rotated deterministically per round, followed
// by bus contention charges and barrier bookkeeping.
func (s *SMPSystem) commitLoop(envs []*genEnv) {
	n := s.N
	state := make([]int, n)
	pendTok := make([]bool, n)      // sequential mode: token owed at next slot
	pendRep := make([]ctrlReply, n) // its payload
	busDelta := make([]uint64, n)   // shared-bus busy cycles during each drain
	workDelta := make([]uint64, n)  // CPU cycles charged during each drain
	live := n
	cpb := s.Cfg.Bus.CPUCyclesPerBusCycle
	if cpb <= 0 {
		cpb = 1
	}

	var round uint64
	for live > 0 {
		// Arbitration order: plain rotation, or a seeded pseudo-random
		// rotation when fuzzing schedules.
		off := int(round % uint64(n))
		if seed := s.Cfg.SMP.ArbSeed; seed != 0 {
			off = int(splitmix64(seed^round) % uint64(n))
		}

		for i := range busDelta {
			busDelta[i], workDelta[i] = 0, 0
		}
		for k := 0; k < n; k++ {
			i := (off + k) % n
			if state[i] != stRunning {
				continue
			}
			e := envs[i]
			if pendTok[i] {
				// Sequential mode: wake the generator only now, at its
				// commit slot, so exactly one goroutine runs at a time.
				pendTok[i] = false
				e.ctl <- pendRep[i]
			}
			qu := <-e.out
			s.cur = i
			c := s.CPUs[i]
			b0 := s.Bus.BusyBusCycle
			w0 := c.Breakdown.Total()
			s.drainRefs(c, qu.refs)
			var rep ctrlReply
			if qu.op != nil {
				rep = s.execOp(i, qu.op)
			}
			busDelta[i] = s.Bus.BusyBusCycle - b0
			workDelta[i] = uint64(c.Breakdown.Total() - w0)
			if qu.refs != nil {
				e.free <- qu.refs[:0]
			}
			switch {
			case qu.done:
				state[i] = stDone
				live--
			case qu.barrier:
				state[i] = stBarrier
			case qu.op != nil || s.seq:
				if s.seq {
					pendTok[i], pendRep[i] = true, rep
				} else {
					e.ctl <- rep
				}
			}
		}

		// Bus contention: each CPU's wait grows with the bus demand the
		// *other* CPUs placed in the same round — overlap probability
		// demand_i x demand_other / capacity, capped at fully serialized
		// (a CPU can never wait longer than everyone else's traffic).
		// Integer arithmetic, commit-order independent, deterministic.
		var demand, maxWork uint64
		for i := 0; i < n; i++ {
			demand += busDelta[i]
			if workDelta[i] > maxWork {
				maxWork = workDelta[i]
			}
		}
		if demand > 0 && maxWork > 0 {
			capacity := maxWork / uint64(cpb)
			if capacity == 0 {
				capacity = 1
			}
			for i := 0; i < n; i++ {
				other := demand - busDelta[i]
				if busDelta[i] == 0 || other == 0 {
					continue
				}
				extra := busDelta[i] * other / capacity
				if extra > other {
					extra = other
				}
				if extra == 0 {
					continue
				}
				stall := stats.Cycles(s.Bus.ToCPU(int(extra)))
				s.cur = i
				s.CPUs[i].Charge(stall, cpu.Memory)
				s.BusStall[i] += stall
			}
		}

		// Barrier release: when every unfinished thread has arrived,
		// align the waiters' clocks to the latest arrival and wake them.
		anyB, allB := false, true
		for i := 0; i < n; i++ {
			if state[i] == stBarrier {
				anyB = true
			} else if state[i] == stRunning {
				allB = false
			}
		}
		if anyB && allB {
			var tmax uint64
			for i := 0; i < n; i++ {
				if state[i] == stBarrier {
					if cl := s.clock(i); cl > tmax {
						tmax = cl
					}
				}
			}
			for i := 0; i < n; i++ {
				if state[i] != stBarrier {
					continue
				}
				if cl := s.clock(i); cl < tmax {
					s.Idle[i] += stats.Cycles(tmax - cl)
				}
				state[i] = stRunning
				if s.seq {
					pendTok[i], pendRep[i] = true, ctrlReply{}
				} else {
					envs[i].ctl <- ctrlReply{}
				}
			}
		}

		if s.OnQuantum != nil {
			s.OnQuantum(round)
		}
		round++
	}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash for
// deterministic arbitration rotation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
