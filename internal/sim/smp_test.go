package sim

import (
	"runtime"
	"testing"

	"shadowtlb/internal/core"
	"shadowtlb/internal/workload"
	"shadowtlb/internal/workload/em3d"
	"shadowtlb/internal/workload/radix"
)

func smpConfig(cpus int) Config {
	cfg := Default().WithTLB(64).WithMTLB(core.MTLBConfig{Entries: 128, Ways: 2})
	return cfg.WithSMP(cpus)
}

func TestSMPRadixSorts(t *testing.T) {
	for _, cpus := range []int{1, 2, 4} {
		w := radix.NewParallel(radix.SmallConfig())
		res := RunSMP(smpConfig(cpus), w)
		if !w.Sorted {
			t.Fatalf("cpus=%d: not sorted", cpus)
		}
		if res.CPUs != cpus {
			t.Fatalf("cpus=%d: result reports %d", cpus, res.CPUs)
		}
		if res.MachineCycles == 0 || res.Breakdown.Total() == 0 {
			t.Fatalf("cpus=%d: empty result %+v", cpus, res)
		}
		if uint64(res.MaxCPUCycles) > res.MachineCycles {
			t.Fatalf("cpus=%d: max CPU cycles %d beyond machine cycles %d",
				cpus, res.MaxCPUCycles, res.MachineCycles)
		}
	}
}

func TestSMPEm3dChecksumStableAcrossCPUCounts(t *testing.T) {
	// The graph depends on the thread count, so checksums differ across
	// CPU counts — but for a fixed count they must be identical across
	// runs and executors.
	for _, cpus := range []int{1, 2, 4} {
		w1 := em3d.NewParallel(em3d.SmallConfig())
		r1 := RunSMP(smpConfig(cpus), w1)
		w2 := em3d.NewParallel(em3d.SmallConfig())
		r2 := RunSMP(smpConfig(cpus), w2)
		if w1.Checksum != w2.Checksum {
			t.Fatalf("cpus=%d: checksum %d vs %d", cpus, w1.Checksum, w2.Checksum)
		}
		if r1 != r2 {
			t.Fatalf("cpus=%d: results differ:\n%+v\n%+v", cpus, r1, r2)
		}
	}
}

func TestSMPSequentialExecutorMatches(t *testing.T) {
	for _, cpus := range []int{1, 2, 4} {
		rp := RunSMP(smpConfig(cpus), radix.NewParallel(radix.SmallConfig()))
		rs := RunSMPSequential(smpConfig(cpus), radix.NewParallel(radix.SmallConfig()))
		if rp != rs {
			t.Fatalf("cpus=%d: pipelined vs sequential:\n%+v\n%+v", cpus, rp, rs)
		}
	}
}

func TestSMPDeterministicAcrossGOMAXPROCS(t *testing.T) {
	want := RunSMP(smpConfig(2), radix.NewParallel(radix.SmallConfig()))
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(p)
		got := RunSMP(smpConfig(2), radix.NewParallel(radix.SmallConfig()))
		if got != want {
			t.Fatalf("GOMAXPROCS=%d: results differ:\n%+v\n%+v", p, got, want)
		}
	}
}

func TestSMPMixRunsPerCPUProcesses(t *testing.T) {
	mix := workload.NewMix("mix",
		radix.New(radix.SmallConfig()),
		em3d.New(em3d.SmallConfig()),
	)
	for _, cpus := range []int{1, 2} {
		r1 := RunSMP(smpConfig(cpus), mix)
		r2 := RunSMP(smpConfig(cpus), workload.NewMix("mix",
			radix.New(radix.SmallConfig()),
			em3d.New(em3d.SmallConfig()),
		))
		if r1 != r2 {
			t.Fatalf("cpus=%d: mix results differ:\n%+v\n%+v", cpus, r1, r2)
		}
		if r1.IPIs != 0 {
			t.Fatalf("cpus=%d: private address spaces must not IPI (got %d)", cpus, r1.IPIs)
		}
	}
}

func TestSMPSerialWorkloadOnCPU0(t *testing.T) {
	w := radix.New(radix.SmallConfig())
	res := RunSMP(smpConfig(2), w)
	if !w.Sorted {
		t.Fatal("not sorted")
	}
	if res.MinCPUCycles >= res.MaxCPUCycles {
		t.Fatalf("expected an idle second CPU: min %d max %d", res.MinCPUCycles, res.MaxCPUCycles)
	}
}
