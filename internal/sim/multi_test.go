package sim

import (
	"testing"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/workload"
	"shadowtlb/internal/workload/compress"
	"shadowtlb/internal/workload/gcc"
)

func TestMultiRunsToCompletion(t *testing.T) {
	ws := []workload.Workload{
		compress.New(compress.SmallConfig()),
		gcc.New(gcc.SmallConfig()),
	}
	ms := NewMulti(smallMTLB().WithTLB(64), ws, 200_000)
	total := ms.Run()
	if total == 0 {
		t.Fatal("no cycles")
	}
	for i, p := range ms.Procs {
		if !p.done {
			t.Errorf("proc %d not done", i)
		}
		if p.Cycles == 0 {
			t.Errorf("proc %d: no cycles attributed", i)
		}
		if p.Switches < 2 {
			t.Errorf("proc %d: only %d dispatches; quantum not enforced", i, p.Switches)
		}
	}
	// Per-process cycles must sum to the machine total minus the boot
	// charge (attributed before scheduling starts).
	var sum uint64
	for _, p := range ms.Procs {
		sum += uint64(p.Cycles)
	}
	boot := uint64(ms.Kernel.Costs.Boot)
	if sum+boot != uint64(total) {
		t.Errorf("per-proc cycles %d + boot %d != total %d", sum, boot, total)
	}
}

func TestMultiWorkloadsComputeCorrectly(t *testing.T) {
	// Programs time-sliced on one machine must compute exactly what
	// they compute alone.
	c1 := compress.New(compress.SmallConfig())
	g1 := gcc.New(gcc.SmallConfig())
	ms := NewMulti(smallMTLB().WithTLB(64), []workload.Workload{c1, g1}, 100_000)
	ms.Run()

	c2 := compress.New(compress.SmallConfig())
	RunOn(smallMTLB().WithTLB(64), c2)
	if c1.CompressedLen != c2.CompressedLen {
		t.Errorf("compress diverged under multiprogramming: %d vs %d",
			c1.CompressedLen, c2.CompressedLen)
	}
	g2 := gcc.New(gcc.SmallConfig())
	RunOn(smallMTLB().WithTLB(64), g2)
	if g1.NodesBuilt != g2.NodesBuilt {
		t.Errorf("gcc diverged: %d vs %d", g1.NodesBuilt, g2.NodesBuilt)
	}
}

func TestMultiDeterministic(t *testing.T) {
	run := func() triple {
		ws := []workload.Workload{
			compress.New(compress.SmallConfig()),
			gcc.New(gcc.SmallConfig()),
		}
		ms := NewMulti(smallMTLB().WithTLB(64), ws, 150_000)
		total := ms.Run()
		return triple{uint64(total), uint64(ms.Procs[0].Cycles), uint64(ms.Procs[1].Cycles)}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("multiprogramming not deterministic: %+v vs %+v", a, b)
	}
}

type triple struct{ total, p0, p1 uint64 }

func TestMultiSuperpagesSoftenContextSwitches(t *testing.T) {
	// Two TLB-hostile processes sharing a 64-entry TLB with no ASIDs:
	// every switch flushes it. With superpages the refill is a handful
	// of misses; with 4 KB pages it is the whole working set again.
	mk := func() []workload.Workload {
		return []workload.Workload{
			&workload.RandomAccess{Bytes: 512 * arch.KB, Accesses: 150_000, Remapped: true, StepPer: 2},
			&workload.RandomAccess{Bytes: 512 * arch.KB, Accesses: 150_000, Remapped: true, StepPer: 2},
		}
	}
	const quantum = 50_000

	base := NewMulti(small().WithTLB(64), mk(), quantum)
	baseTotal := base.Run()
	mtlb := NewMulti(smallMTLB().WithTLB(64), mk(), quantum)
	mtlbTotal := mtlb.Run()

	if mtlbTotal >= baseTotal {
		t.Errorf("MTLB multiprogramming (%d) not faster than base (%d)", mtlbTotal, baseTotal)
	}
	var baseTLB, mtlbTLB uint64
	for i := range base.Procs {
		baseTLB += uint64(base.Procs[i].TLBMissCycles)
		mtlbTLB += uint64(mtlb.Procs[i].TLBMissCycles)
	}
	if mtlbTLB*5 > baseTLB {
		t.Errorf("superpage TLB refill not cheaper: %d vs %d", mtlbTLB, baseTLB)
	}
}

func TestMultiValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for no workloads")
			}
		}()
		NewMulti(small(), nil, 1000)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for zero quantum")
			}
		}()
		NewMulti(small(), []workload.Workload{gcc.New(gcc.SmallConfig())}, 0)
	}()
}
