package sim_test

import (
	"testing"

	"shadowtlb/internal/obs"
	"shadowtlb/internal/sim"
	"shadowtlb/internal/workload/radix"
)

// preObsBaselineNS is the per-run wall time of BenchmarkRunObsDisabled's
// exact configuration (radix small, 64-entry TLB + default MTLB)
// measured on the development machine immediately BEFORE the
// observability layer was threaded through the devices: 36,988,636
// ns/op. The disabled path adds only nil checks, so today's runs must
// stay in the same regime.
const preObsBaselineNS = 36_988_636

// overheadFactor is the regression tripwire: the benchmark fails if a
// run exceeds baseline × factor. 2.5× is deliberately generous — it
// tolerates slow CI machines, turbo variance and GC jitter while still
// catching a real regression (an accidental allocation or branch in the
// per-reference hot path shows up as an integer multiple, not 10%).
const overheadFactor = 2.5

// benchWorkload builds the benchmark's fixed workload.
func benchWorkload() *radix.Radix { return radix.New(radix.SmallConfig()) }

// BenchmarkRunObsDisabled measures the simulator with observability off
// — the production configuration — and enforces the zero-overhead
// contract against the pre-observability baseline. The assertion is
// skipped under -short (bench smoke runs) and under the race detector,
// whose instrumentation dominates wall time.
func BenchmarkRunObsDisabled(b *testing.B) {
	cfg := observedConfig()
	var res sim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = sim.RunOn(cfg, benchWorkload())
	}
	b.StopTimer()
	if res.TotalCycles() == 0 {
		b.Fatal("simulation ran zero cycles")
	}
	if testing.Short() || raceEnabled {
		return
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if limit := float64(preObsBaselineNS) * overheadFactor; perOp > limit {
		b.Errorf("obs-disabled run took %.0f ns/op, over %.0f (baseline %d × %.1f): the disabled path regressed",
			perOp, limit, preObsBaselineNS, overheadFactor)
	}
}

// BenchmarkRunObsEnabled measures the same run with full observability
// (registry + sampler + timeline), for comparison against the disabled
// path in benchmark output. No assertion: the enabled path is allowed
// to cost more.
func BenchmarkRunObsEnabled(b *testing.B) {
	cfg := observedConfig()
	var res sim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs.New(obs.Options{SampleEvery: 1_000_000, Timeline: true})
		res = sim.RunObserved(cfg, benchWorkload(), o)
	}
	b.StopTimer()
	if res.TotalCycles() == 0 {
		b.Fatal("simulation ran zero cycles")
	}
}
