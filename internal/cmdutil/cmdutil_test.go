package cmdutil

import (
	"flag"
	"io"
	"strings"
	"testing"

	"shadowtlb/internal/exp"
)

// TestRegisterCommonFlagsSurface locks the shared flag set: every
// command that calls RegisterCommonFlags exposes exactly these names
// with these defaults, which is the point of deduplicating the
// plumbing.
func TestRegisterCommonFlagsSurface(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterCommonFlags(fs)

	for _, name := range []string{"metrics", "timeline", "sample", "pprof", "memprofile", "fastpath"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !f.FastPath || f.NoFastPath() {
		t.Error("fast path must default on")
	}
	if f.Enabled() {
		t.Error("observability enabled with no flags set")
	}
	if f.Sample != DefaultSampleEvery {
		t.Errorf("sample default %d", f.Sample)
	}
}

func TestRegisterProfilingSubset(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var f ObsFlags
	f.RegisterProfiling(fs)
	for _, name := range []string{"pprof", "memprofile"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	for _, name := range []string{"metrics", "timeline", "sample", "fastpath"} {
		if fs.Lookup(name) != nil {
			t.Errorf("profiling subset leaked -%s", name)
		}
	}
}

func TestApplyPushesFastPathSwitch(t *testing.T) {
	defer exp.SetNoFastPath(false)

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := RegisterCommonFlags(fs)
	if err := fs.Parse([]string{"-fastpath=false"}); err != nil {
		t.Fatal(err)
	}
	if !f.NoFastPath() {
		t.Fatal("-fastpath=false not reflected")
	}
	var errb strings.Builder
	stop, err := f.Apply(&errb)
	if err != nil {
		t.Fatal(err)
	}
	stop()

	// Apply must have pushed the switch into the experiment config
	// builders: registry cells now carry NoFastPath.
	for _, d := range exp.Descriptors() {
		if d.Cells == nil {
			continue
		}
		for _, c := range d.Cells(exp.Small) {
			if !c.Cfg.NoFastPath {
				t.Fatalf("Apply did not push NoFastPath into %s cells", d.ID)
			}
		}
		return
	}
	t.Fatal("no cell-bearing experiment registered")
}

func TestOptionsDerivation(t *testing.T) {
	f := ObsFlags{MetricsDir: "out", Sample: 500}
	o := f.Options()
	if o.SampleEvery != 500 || o.Timeline {
		t.Errorf("options %+v", o)
	}
	f = ObsFlags{Timeline: "t.json", Sample: 500}
	o = f.Options()
	if o.SampleEvery != 0 || !o.Timeline {
		t.Errorf("options %+v", o)
	}
}
