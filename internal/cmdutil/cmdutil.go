// Package cmdutil holds the observability and profiling plumbing shared
// by the mtlbsim, mtlbexp and mtlbtrace commands: flag registration,
// option derivation, per-cell artifact writing and timeline assembly.
// Keeping it here means the three mains expose identical flags with
// identical semantics.
package cmdutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"shadowtlb/internal/exp"
	"shadowtlb/internal/invariant"
	"shadowtlb/internal/obs"
)

// DefaultSampleEvery is the default sampling interval in simulated
// cycles. Kernel boot alone costs ~2M cycles, so even the smallest run
// crosses at least two boundaries.
const DefaultSampleEvery = 1_000_000

// ObsFlags carries the observability and profiling flags every command
// exposes.
type ObsFlags struct {
	MetricsDir string
	Timeline   string
	Sample     uint64
	PProf      string
	MemProfile string
}

// Register installs the shared flags on fs.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsDir, "metrics", "", "write metrics, time series and manifests into `DIR`")
	fs.StringVar(&f.Timeline, "timeline", "", "write a Chrome trace-event / Perfetto timeline to `FILE`")
	fs.Uint64Var(&f.Sample, "sample", DefaultSampleEvery, "time-series sampling interval in simulated `cycles`")
	f.RegisterProfiling(fs)
}

// RegisterProfiling installs only the host-profiling subset (-pprof,
// -memprofile), for commands like mtlbbench where simulation-side
// observability would perturb the measurement being taken.
func (f *ObsFlags) RegisterProfiling(fs *flag.FlagSet) {
	fs.StringVar(&f.PProf, "pprof", "", "write a host CPU profile to `FILE`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a host heap profile to `FILE`")
}

// CommonFlags bundles the flag plumbing every command repeats: the
// observability/profiling set plus the CPU fast-path engine switch.
// Register once, Apply once, instead of copying the wiring into each
// new main.
type CommonFlags struct {
	ObsFlags
	FastPath bool
	Check    bool
}

// RegisterCommonFlags installs the shared observability, profiling and
// engine flags on fs and returns the bound set.
func RegisterCommonFlags(fs *flag.FlagSet) *CommonFlags {
	f := &CommonFlags{}
	f.ObsFlags.Register(fs)
	fs.BoolVar(&f.FastPath, "fastpath", true, "use the CPU fast-path access engine (results are identical either way)")
	fs.BoolVar(&f.Check, "check", false, "audit machine invariants during every simulation (panics on violation; slower)")
	return f
}

// Apply pushes the parsed flags into the packages they configure — the
// fast-path switch into the experiment config builders, the invariant
// harness onto every system assembled — and starts the requested host
// profiles, returning their stop function (never nil).
func (f *CommonFlags) Apply(stderr io.Writer) (stop func(), err error) {
	exp.SetNoFastPath(!f.FastPath)
	if f.Check {
		invariant.EnableGlobalChecks()
	}
	return f.StartProfiling(stderr)
}

// NoFastPath reports the engine switch inverted, for commands that
// build a sim.Config directly instead of through the registry.
func (f *CommonFlags) NoFastPath() bool { return !f.FastPath }

// Enabled reports whether any simulation-side observability was asked
// for (profiling flags alone don't instrument the simulation).
func (f *ObsFlags) Enabled() bool {
	return f.MetricsDir != "" || f.Timeline != ""
}

// Options derives obs.Options: sampling only matters when a metrics
// directory will receive the series, the timeline only when a file will.
func (f *ObsFlags) Options() obs.Options {
	o := obs.Options{Timeline: f.Timeline != ""}
	if f.MetricsDir != "" {
		o.SampleEvery = f.Sample
	}
	return o
}

// StartProfiling begins the requested host profiles and returns a stop
// function that finishes them (stopping the CPU profile, then writing
// the heap profile). The stop function is never nil.
func (f *ObsFlags) StartProfiling(stderr io.Writer) (func(), error) {
	stopCPU := func() {}
	if f.PProf != "" {
		stop, err := obs.StartCPUProfile(f.PProf)
		if err != nil {
			return func() {}, err
		}
		stopCPU = stop
	}
	return func() {
		stopCPU()
		if f.MemProfile != "" {
			if err := obs.WriteHeapProfile(f.MemProfile); err != nil {
				fmt.Fprintf(stderr, "warning: heap profile: %v\n", err)
			}
		}
	}, nil
}

// WriteCellArtifacts writes one observed cell's metrics dump and time
// series into the metrics directory as <name>.metrics.json,
// <name>.series.csv and <name>.series.json. It creates the directory on
// first use.
func (f *ObsFlags) WriteCellArtifacts(name string, o *obs.Obs) error {
	if f.MetricsDir == "" || o == nil {
		return nil
	}
	if err := os.MkdirAll(f.MetricsDir, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(f.MetricsDir, name+".metrics.json"),
		o.Registry().WriteDump); err != nil {
		return err
	}
	if smp := o.Sampler(); smp != nil {
		if err := writeFile(filepath.Join(f.MetricsDir, name+".series.csv"),
			smp.WriteCSV); err != nil {
			return err
		}
		if err := writeFile(filepath.Join(f.MetricsDir, name+".series.json"),
			smp.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// WriteManifest writes any JSON document into the metrics directory.
func (f *ObsFlags) WriteManifest(name string, write func(io.Writer) error) error {
	if f.MetricsDir == "" {
		return nil
	}
	if err := os.MkdirAll(f.MetricsDir, 0o755); err != nil {
		return err
	}
	return writeFile(filepath.Join(f.MetricsDir, name), write)
}

// WriteTimeline assembles the named per-cell timelines into one trace
// file, one Perfetto process per cell, and warns on stderr when any
// timeline hit its event cap.
func (f *ObsFlags) WriteTimeline(stderr io.Writer, named []NamedTimeline) error {
	if f.Timeline == "" {
		return nil
	}
	procs := make([]obs.Process, 0, len(named))
	for i, nt := range named {
		if nt.TL == nil {
			continue
		}
		if d := nt.TL.Dropped(); d > 0 {
			fmt.Fprintf(stderr, "warning: timeline %s dropped %d events (cap %d); raise obs.Options.MaxTimelineEvents\n",
				nt.Name, d, obs.DefaultMaxTimelineEvents)
		}
		procs = append(procs, obs.Process{
			Pid:     i + 1,
			Name:    nt.Name,
			Events:  nt.TL.Events(),
			Dropped: nt.TL.Dropped(),
		})
	}
	if dir := filepath.Dir(f.Timeline); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return writeFile(f.Timeline, func(w io.Writer) error {
		return obs.WriteTrace(w, procs)
	})
}

// NamedTimeline labels one cell's timeline for trace assembly.
type NamedTimeline struct {
	Name string
	TL   *obs.Timeline
}

// writeFile creates path and streams write into it, reporting the first
// error from either.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
