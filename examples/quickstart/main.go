// Quickstart: assemble the simulated machine with and without a memory-
// controller TLB (MTLB), run the same TLB-hostile program on both, and
// compare where the cycles went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/core"
	"shadowtlb/internal/sim"
	"shadowtlb/internal/workload"
)

func main() {
	// A program whose 2 MB working set is accessed at random: 512 pages
	// against a 64-entry TLB (reach: 256 KB) — the disparity the paper
	// opens with.
	newProgram := func() workload.Workload {
		return &workload.RandomAccess{
			Bytes:     2 * arch.MB,
			Accesses:  300_000,
			WriteFrac: 25,
			Remapped:  true, // ask the OS for shadow-backed superpages
			StepPer:   2,
		}
	}

	// The conventional machine: 64-entry fully associative CPU TLB,
	// 512 KB cache, no MTLB.
	base := sim.Default().WithTLB(64)

	// The same machine with the paper's proposal: a 1024-entry 4-way
	// MTLB in the memory controller over 512 MB of shadow space.
	mtlb := sim.Default().WithTLB(64).
		WithMTLB(core.MTLBConfig{Entries: 1024, Ways: 4})

	fmt.Println("running on the conventional system...")
	r1 := sim.RunOn(base, newProgram())
	fmt.Println("running on the MTLB system...")
	r2 := sim.RunOn(mtlb, newProgram())

	show := func(r sim.Result) {
		b := r.Breakdown
		fmt.Printf("  %-18s %12d cycles (user %d, tlb-miss %d, memory %d, kernel %d)\n",
			r.Label+":", r.TotalCycles(), b.User, b.TLBMiss, b.Memory, b.Kernel)
		fmt.Printf("  %-18s tlb-miss time %.1f%%, cache hit %.1f%%\n",
			"", 100*r.TLBFraction(), 100*r.CacheHitRate)
		if r.HasMTLB {
			fmt.Printf("  %-18s %d superpages created, MTLB hit rate %.1f%%\n",
				"", r.SuperpagesMade, 100*r.MTLBHitRate)
		}
	}
	fmt.Println()
	show(r1)
	fmt.Println()
	show(r2)

	speedup := float64(r1.TotalCycles()) / float64(r2.TotalCycles())
	fmt.Printf("\nMTLB speedup: %.2fx — TLB reach grew from %d KB to %d KB\n",
		speedup, r1.CPUTLBReachPeak/arch.KB, r2.CPUTLBReachPeak/arch.KB)
}
