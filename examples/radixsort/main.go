// Radixsort runs the SPLASH-2 radix sort — the paper's worst TLB citizen
// ("particularly poor TLB locality; even at 256 TLB entries, it still
// spends 13.5% of total runtime in TLB miss handling") — across CPU TLB
// sizes with and without the MTLB, printing the series Figure 3 and §3.4
// report for it.
//
//	go run ./examples/radixsort          # small keys (fast)
//	go run ./examples/radixsort -paper   # the paper's 1,048,576 keys
package main

import (
	"flag"
	"fmt"

	"shadowtlb/internal/core"
	"shadowtlb/internal/sim"
	"shadowtlb/internal/workload/radix"
)

func main() {
	paper := flag.Bool("paper", false, "use the paper's 1M-key configuration")
	flag.Parse()

	cfg := radix.SmallConfig()
	if *paper {
		cfg = radix.PaperConfig()
	}
	fmt.Printf("radix sort: %d keys, radix %d\n\n", cfg.Keys, cfg.Radix)
	fmt.Printf("%-22s %14s %14s %10s\n", "config", "cycles", "tlb-miss time", "sorted")

	for _, tlbSize := range []int{64, 96, 128, 256} {
		w := radix.New(cfg)
		r := sim.RunOn(sim.Default().WithTLB(tlbSize), w)
		fmt.Printf("%-22s %14d %13.1f%% %10v\n",
			r.Label, r.TotalCycles(), 100*r.TLBFraction(), w.Sorted)
	}
	for _, tlbSize := range []int{64, 128} {
		w := radix.New(cfg)
		r := sim.RunOn(sim.Default().WithTLB(tlbSize).WithMTLB(core.DefaultMTLBConfig()), w)
		fmt.Printf("%-22s %14d %13.1f%% %10v   (%d superpages, MTLB hit %.1f%%)\n",
			r.Label, r.TotalCycles(), 100*r.TLBFraction(), w.Sorted,
			r.SuperpagesMade, 100*r.MTLBHitRate)
	}

	fmt.Println("\nThe dynamically allocated space is remapped once, before the large")
	fmt.Println("structures are initialized, exactly as the paper describes (§3.1).")
}
