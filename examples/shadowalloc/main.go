// Shadowalloc walks through the paper's core mechanism at the component
// level, recreating Figure 1's example by hand:
//
//   - a shadow address space above installed DRAM,
//   - the flat shadow-to-physical table in the memory controller,
//   - the MTLB caching its entries,
//   - and the Figure 2 bucket allocator handing out shadow regions.
//
// It maps a 16 KB virtual superpage onto four discontiguous real frames
// through a contiguous shadow region, then translates an access the way
// the hardware would: CPU TLB first, MTLB second.
//
//	go run ./examples/shadowalloc
package main

import (
	"fmt"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/core"
	"shadowtlb/internal/mem"
	"shadowtlb/internal/tlb"
)

func main() {
	// A machine with 1 GB of DRAM and 32-bit physical addresses: three
	// quarters of the physical address space is not backed by memory.
	// Put 512 MB of shadow space at 0x80000000, as in the paper.
	dram := mem.NewDRAM(1 * arch.GB)
	space := core.DefaultShadowSpace()
	fmt.Printf("installed DRAM: %d MB; shadow space: [%v, +%d MB)\n",
		dram.Size()/arch.MB, space.Base, space.Size/arch.MB)

	// The MMC's flat translation table: 4 bytes per shadow page, in
	// DRAM at 0x00100000. 512 MB of shadow space costs only 512 KB.
	table := core.NewShadowTable(space, 0x00100000, dram)
	fmt.Printf("shadow table: %d KB for %d shadow pages\n",
		table.Bytes()/arch.KB, space.Pages())

	// The MTLB: 128 entries, 2-way, NRU — the paper's default.
	mtlb := core.NewMTLB(core.DefaultMTLBConfig(), table)

	// The Figure 2 bucket allocator.
	alloc := core.NewBucketAlloc(space, core.DefaultPartition())
	shadow, err := alloc.Alloc(arch.Page16K)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nallocated a 16KB shadow region at %v\n", shadow)

	// Four deliberately discontiguous real frames back the superpage.
	frames := []uint64{0x40138, 0x4012, 0x30777, 0x05001}
	for i, f := range frames {
		spa := shadow + arch.PAddr(i*arch.PageSize)
		table.Set(spa, core.TableEntry{PFN: f, Valid: true})
		fmt.Printf("  shadow page %v -> real frame %#08x\n", spa, f)
	}

	// The processor TLB maps the virtual superpage with ONE entry.
	cpuTLB := tlb.New(tlb.FullyAssociative(64))
	const vbase = 0x00004000
	cpuTLB.Insert(tlb.Entry{
		Class:  arch.Page16K,
		Tag:    vbase,
		Target: uint64(shadow),
	})
	fmt.Printf("\nCPU TLB: one %v entry maps virtual %#08x -> shadow %v\n",
		arch.Page16K, vbase, shadow)

	// Translate an access end to end, as Figure 1 does for 0x00004080.
	va := arch.VAddr(0x00005080) // second base page of the superpage
	e := cpuTLB.Lookup(uint64(va))
	if e == nil {
		panic("TLB miss?")
	}
	shadowPA := arch.PAddr(e.Translate(uint64(va)))
	tr, err := mtlb.Translate(shadowPA, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\naccess %v:\n", va)
	fmt.Printf("  CPU TLB:  %v -> shadow %v (superpage hit)\n", va, shadowPA)
	fmt.Printf("  MTLB:     %v -> real %v (miss: filled from table entry at %v)\n",
		shadowPA, tr.Real, tr.FillAddr)

	// A second access to the same page hits the MTLB cache.
	tr2, _ := mtlb.Translate(shadowPA+0x40, false)
	fmt.Printf("  MTLB:     %v -> real %v (hit)\n", shadowPA+0x40, tr2.Real)

	// The data really lives at the discontiguous frame.
	dram.WriteU64(tr.Real, 0xCAFEF00D)
	fmt.Printf("\nwrote through shadow mapping; real frame %#08x holds %#x\n",
		frames[1], dram.ReadU64(arch.FrameToPAddr(frames[1])|arch.PAddr(va.PageOff())))

	// Per-base-page referenced/dirty bits live in the table.
	mtlb.Translate(shadowPA, true) // a store: sets dirty
	ent := table.Get(shadowPA)
	fmt.Printf("table entry for %v: ref=%v dirty=%v — per-base-page, despite the superpage\n",
		shadowPA, ent.Ref, ent.Dirty)
}
