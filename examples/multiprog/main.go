// Multiprog time-slices two TLB-hostile processes on one machine whose
// unified TLB has no address-space identifiers, so every context switch
// flushes it. It shows the MTLB's multiprogramming dividend: the
// switched-in process refills its TLB with a few superpage entries
// instead of hundreds of 4 KB entries, and the MTLB itself — indexed by
// physical shadow addresses — keeps its contents across the switch.
//
//	go run ./examples/multiprog
package main

import (
	"fmt"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/core"
	"shadowtlb/internal/sim"
	"shadowtlb/internal/workload"
)

func main() {
	mk := func() []workload.Workload {
		return []workload.Workload{
			&workload.RandomAccess{Bytes: 512 * arch.KB, Accesses: 200_000, Remapped: true, StepPer: 2},
			&workload.RandomAccess{Bytes: 512 * arch.KB, Accesses: 200_000, Remapped: true, StepPer: 2},
		}
	}
	const quantum = 50_000 // CPU cycles per time slice

	fmt.Println("two 512 KB random-access processes, 50k-cycle quantum, 64-entry TLB")
	fmt.Println()

	base := sim.NewMulti(sim.Default().WithTLB(64), mk(), quantum)
	baseTotal := base.Run()
	fmt.Println("conventional machine:")
	fmt.Print(base)

	mtlb := sim.NewMulti(sim.Default().WithTLB(64).WithMTLB(core.DefaultMTLBConfig()), mk(), quantum)
	mtlbTotal := mtlb.Run()
	fmt.Println("\nwith the MTLB:")
	fmt.Print(mtlb)

	fmt.Printf("\ntotal: %d vs %d cycles — %.2fx faster with the MTLB\n",
		baseTotal, mtlbTotal, float64(baseTotal)/float64(mtlbTotal))
	fmt.Println("(each process's working set reloads into the flushed TLB as ~2")
	fmt.Println(" superpage entries instead of ~128 base-page entries per switch)")
}
