// Pagingdemo shows the part of the paper conventional superpages cannot
// do: paging a superpage out of memory 4 KB at a time. Because the MTLB
// keeps referenced and dirty bits per base page (§2.5), the OS writes
// only the dirty base pages to disk, drops the clean ones, and services
// later touches through shadow page faults (§4) — all while the CPU TLB
// keeps its single superpage entry.
//
//	go run ./examples/pagingdemo
package main

import (
	"fmt"

	"shadowtlb/internal/arch"
	"shadowtlb/internal/core"
	"shadowtlb/internal/sim"
	"shadowtlb/internal/vm"
	"shadowtlb/internal/workload"
)

func main() {
	s := sim.New(sim.Default().WithMTLB(core.DefaultMTLBConfig()))

	// One 1 MB region -> one 1 MB shadow-backed superpage (256 pages).
	r := s.VM.AllocRegionAligned("demo", 1*arch.MB, 1*arch.MB, 0)
	if _, err := s.VM.EnsureMapped(r.Base, r.Size); err != nil {
		panic(err)
	}
	if _, err := s.VM.Remap(r.Base, r.Size); err != nil {
		panic(err)
	}
	sp := r.Superpages[0]
	fmt.Printf("superpage: %v, %v at shadow %v (%d base pages)\n",
		sp.VBase, sp.Class, sp.Shadow, sp.Class.BasePages())

	// Touch everything through the timed path; write every 8th page.
	touch := func(p int, kind arch.AccessKind) {
		va := r.Base + arch.VAddr(p*arch.PageSize)
		pte := s.VM.HPT.LookupFast(va)
		res := s.Cache.Access(va, pte.Translate(va), kind)
		for _, ev := range res.Events[:res.NEvents] {
			if _, err := s.MMC.HandleEvent(ev); err != nil {
				panic(err)
			}
		}
	}
	pages := sp.Class.BasePages()
	for p := 0; p < pages; p++ {
		kind := arch.Read
		if p%8 == 0 {
			kind = arch.Write
		}
		touch(p, kind)
	}
	fmt.Printf("after the access phase: %d of %d base pages dirty\n",
		s.VM.DirtyPages(sp), pages)

	// A CLOCK pass reads and clears the (approximate) reference bits.
	refs, _, _ := s.VM.ClearRefBits(sp)
	fmt.Printf("CLOCK scan: %d reference bits set (MMC saw the fills)\n", refs)

	// Page the superpage out both ways.
	res, _ := s.VM.SwapOutSuperpage(sp, vm.PageGrain)
	fmt.Printf("\npage-grain swap-out:      %3d disk writes, %3d clean pages dropped\n",
		res.PagesWritten, res.PagesDropped)

	// Rebuild the superpage state for the conventional comparison.
	rebuild(s, r)
	sp = r.Superpages[0]
	for p := 0; p < pages; p++ {
		kind := arch.Read
		if p%8 == 0 {
			kind = arch.Write
		}
		touch(p, kind)
	}
	res2, _ := s.VM.SwapOutSuperpage(sp, vm.SuperpageGrain)
	fmt.Printf("superpage-grain swap-out: %3d disk writes (a conventional superpage has one dirty bit)\n",
		res2.PagesWritten)

	// Touching a swapped-out page takes a shadow fault and pages it in.
	faultsBefore, insBefore := s.VM.ShadowFaults, s.VM.SwapIns
	workloadTouch(s, r.Base)
	fmt.Printf("\nfirst touch after swap-out: %d shadow fault(s), %d page(s) read back\n",
		s.VM.ShadowFaults-faultsBefore, s.VM.SwapIns-insBefore)
	fmt.Println("the CPU TLB's superpage entry never changed — only MMC state did")
}

// rebuild pages everything back in by faulting each base page.
func rebuild(s *sim.System, r *vm.Region) {
	sp := r.Superpages[0]
	for p := 0; p < sp.Class.BasePages(); p++ {
		spa := sp.Shadow + arch.PAddr(p*arch.PageSize)
		if s.Translator.Table().Get(spa).Valid {
			continue
		}
		if _, err := s.Translator.Translate(spa, false); err != nil {
			if sf, ok := err.(*core.ShadowFault); ok {
				if _, ferr := s.VM.HandleShadowFault(sf); ferr != nil {
					panic(ferr)
				}
				continue
			}
			panic(err)
		}
	}
}

// workloadTouch drives one access through the full CPU path.
func workloadTouch(s *sim.System, va arch.VAddr) {
	var w workload.Env = s.CPU
	w.Load(va, 8)
}
