#!/bin/sh
# bench.sh — seed the benchmark trajectory.
#
# Emits three artifacts:
#
#   BENCH_runner.json  — the fig3 run manifest at small scale, which
#     carries per-cell cycle breakdowns, host wall times and memoization
#     counts — everything a trend dashboard needs to spot simulator
#     slowdowns or result drift between commits.
#
#   BENCH_hotpath.json — fast- vs slow-engine throughput on one fig3
#     cell (see cmd/mtlbbench). The fast/slow speedup ratio is the
#     regression signal; scripts/BENCH_hotpath_baseline.json is the
#     committed reference CI compares against.
#
#   BENCH_serve.json   — daemon throughput under concurrent mixed
#     traffic (see cmd/mtlbload): jobs/s, end-to-end job latency
#     percentiles, per-HTTP-request latency percentiles (request_ms:
#     p50/p95/p99/max over every submit, poll and stream call the run
#     issued) and the shared result cache's hit rate against an
#     in-process mtlbd.
#
#   BENCH_schemes.json — simulated references per host second for every
#     registered translation backend on one fig3 cell (mtlbbench
#     -schemes), so cross-scheme simulator overhead is tracked alongside
#     the hot-path ratio.
#
#   BENCH_replay.json  — compiled trace replay engine vs live execution
#     on every paper workload (mtlbbench -replay): per-workload and
#     aggregate refs/s, the replay/live speedup CI gates against
#     scripts/BENCH_replay_baseline.json, and a bit-identical check.
#
# BENCH_serve.json additionally carries a restart section: the load run
# persists results to a scratch store, then a fresh daemon over the
# same directory replays the job mix and reports its disk-hit rate.
#
# Usage: scripts/bench.sh [runner-output] [hotpath-output] [serve-output] [schemes-output] [replay-output]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_runner.json}"
hot="${2:-BENCH_hotpath.json}"
srv="${3:-BENCH_serve.json}"
sch="${4:-BENCH_schemes.json}"
rpl="${5:-BENCH_replay.json}"

go run ./cmd/mtlbexp -exp fig3 -scale small -json > "$out"
echo "wrote $out ($(wc -c < "$out") bytes)" >&2

go run ./cmd/mtlbbench -o "$hot" -schemes "$sch"
echo "wrote $hot ($(wc -c < "$hot") bytes)" >&2
echo "wrote $sch ($(wc -c < "$sch") bytes)" >&2

storedir="$(mktemp -d)"
trap 'rm -rf "$storedir"' EXIT
go run ./cmd/mtlbload -clients 32 -n 3 -scale small -store "$storedir" -o "$srv"
echo "wrote $srv ($(wc -c < "$srv") bytes)" >&2

go run ./cmd/mtlbbench -replay "$rpl" -replay-baseline scripts/BENCH_replay_baseline.json -tolerance 0.25
echo "wrote $rpl ($(wc -c < "$rpl") bytes)" >&2
