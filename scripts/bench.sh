#!/bin/sh
# bench.sh — seed the benchmark trajectory.
#
# Emits BENCH_runner.json: the fig3 run manifest at small scale, which
# carries per-cell cycle breakdowns, host wall times and memoization
# counts — everything a trend dashboard needs to spot simulator
# slowdowns or result drift between commits.
#
# Usage: scripts/bench.sh [output-file]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_runner.json}"

go run ./cmd/mtlbexp -exp fig3 -scale small -json > "$out"
echo "wrote $out ($(wc -c < "$out") bytes)" >&2
