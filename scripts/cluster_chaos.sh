#!/bin/sh
# cluster_chaos.sh — end-to-end cluster validation: byte-identity and
# worker-kill survival.
#
# Phase 1 (identity): start two mtlbd workers and an mtlbgate
# coordinator over them, run a real experiment sweep through the gate
# with mtlbexp -server, and diff the output against a plain local run.
# The cluster must be invisible in the bytes.
#
# Phase 2 (chaos): restart the fleet cold, launch the same sweep in the
# background, SIGKILL one worker while cells are in flight, and require
# the sweep to finish with exit 0 and byte-identical output anyway —
# the router fails the dead worker's cells over to the survivor.
#
# Usage: scripts/cluster_chaos.sh [experiments] [scale]
# experiments is a space-separated list of mtlbexp -exp ids.
set -eu

cd "$(dirname "$0")/.."
exps="${1:-tlbtime reach}"
scale="${2:-small}"

work="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/mtlbd" ./cmd/mtlbd
go build -o "$work/mtlbgate" ./cmd/mtlbgate
go build -o "$work/mtlbexp" ./cmd/mtlbexp

# wait_ready URL — poll /readyz until the service accepts work.
wait_ready() {
    i=0
    while ! curl -fsS -o /dev/null "$1/readyz" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "cluster_chaos: $1 never became ready" >&2; exit 1; }
        sleep 0.2
    done
}

# start_fleet — two workers + gate on fixed loopback ports; appends pids.
W1=127.0.0.1:18147
W2=127.0.0.1:18148
GATE=127.0.0.1:18146
start_fleet() {
    "$work/mtlbd" -listen "$W1" -node-id w1 -workers 2 >"$work/w1.log" 2>&1 &
    pids="$pids $!"
    "$work/mtlbd" -listen "$W2" -node-id w2 -workers 2 >"$work/w2.log" 2>&1 &
    pids="$pids $!"
    wait_ready "http://$W1"
    wait_ready "http://$W2"
    "$work/mtlbgate" -listen "$GATE" -worker "w1=http://$W1" -worker "w2=http://$W2" \
        -local-fallback=false >"$work/gate.log" 2>&1 &
    pids="$pids $!"
    wait_ready "http://$GATE"
}
stop_fleet() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    for p in $pids; do wait "$p" 2>/dev/null || true; done
    pids=""
}

# sweep OUTFILE [SERVER] — run every experiment in $exps, concatenated.
sweep() {
    : > "$1"
    for e in $exps; do
        if [ "${2:-}" != "" ]; then
            "$work/mtlbexp" -exp "$e" -scale "$scale" -server "$2" >> "$1"
        else
            "$work/mtlbexp" -exp "$e" -scale "$scale" >> "$1"
        fi
    done
}

echo "cluster_chaos: local reference run ($exps @ $scale)" >&2
sweep "$work/local.txt"

echo "cluster_chaos: phase 1 — byte-identity through the gate" >&2
start_fleet
sweep "$work/cluster.txt" "http://$GATE"
diff -u "$work/local.txt" "$work/cluster.txt" || {
    echo "cluster_chaos: FAIL: cluster output differs from local" >&2
    exit 1
}
nodes="$(curl -fsS "http://$GATE/v1/cluster/nodes")"
echo "$nodes" | grep -q '"node_id": "w1"' || { echo "cluster_chaos: w1 missing from fleet" >&2; exit 1; }
echo "$nodes" | grep -q '"node_id": "w2"' || { echo "cluster_chaos: w2 missing from fleet" >&2; exit 1; }
stop_fleet
echo "cluster_chaos: phase 1 OK" >&2

echo "cluster_chaos: phase 2 — SIGKILL a worker mid-sweep" >&2
start_fleet
sweep "$work/chaos.txt" "http://$GATE" &
sweeppid=$!
# Give the sweep a moment to put cells in flight, then murder w1
# (no drain, no goodbye).
sleep 1
w1pid="$(echo "$pids" | awk '{print $1}')"
kill -9 "$w1pid" 2>/dev/null || true
echo "cluster_chaos: killed worker w1 (pid $w1pid)" >&2
if ! wait "$sweeppid"; then
    echo "cluster_chaos: FAIL: sweep died after worker kill" >&2
    exit 1
fi
diff -u "$work/local.txt" "$work/chaos.txt" || {
    echo "cluster_chaos: FAIL: post-kill output differs from local" >&2
    exit 1
}
stop_fleet
echo "cluster_chaos: phase 2 OK — sweep survived the kill, output identical" >&2
echo "cluster_chaos: PASS" >&2
